// BlockAA end-to-end: AA conditions across every generator family, under
// every applicable adversary, with round accounting, thread determinism of
// the run report, and the convergence ledger's block_round_bound check.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exp/ledger.h"
#include "graphs/block_aa.h"
#include "graphs/block_index.h"
#include "graphs/check.h"
#include "graphs/generators.h"
#include "graphs/graph.h"
#include "harness/registry.h"
#include "harness/runner.h"
#include "sim/strategies.h"

namespace treeaa::graphs {
namespace {

std::vector<VertexId> spread_inputs(const BlockIndex& index, std::size_t n) {
  const auto [a, b] = index.diameter_endpoints();
  std::vector<VertexId> inputs;
  for (std::size_t p = 0; p < n; ++p) inputs.push_back(p % 2 == 0 ? a : b);
  return inputs;
}

TEST(BlockAA, HonestRunsAgreeOnEveryFamily) {
  Rng rng(0xAA01);
  const std::size_t n = 7, t = 2;
  for (const GraphFamily f : all_graph_families()) {
    for (const std::size_t size : {4u, 11u, 24u}) {
      const Graph g = make_family_graph(f, size, rng);
      const BlockIndex index(g);
      const auto inputs = spread_inputs(index, n);
      const auto run = run_block_aa(index, inputs, t);
      ASSERT_TRUE(run.corrupt.empty());
      EXPECT_EQ(run.rounds, block_aa_rounds(index, n, t));
      const auto check =
          check_agreement(index, inputs, run.honest_outputs());
      EXPECT_TRUE(check.valid) << graph_family_name(f) << " size " << size;
      EXPECT_TRUE(check.one_agreement)
          << graph_family_name(f) << " size " << size;
    }
  }
}

TEST(BlockAA, RandomInputsStayValidAcrossSeeds) {
  const std::size_t n = 7, t = 2;
  for (const GraphFamily f : all_graph_families()) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      Rng rng(seed);
      const Graph g = make_family_graph(f, 15, rng);
      const BlockIndex index(g);
      std::vector<VertexId> inputs;
      for (std::size_t p = 0; p < n; ++p) {
        inputs.push_back(static_cast<VertexId>(rng.index(g.n())));
      }
      const auto run = run_block_aa(index, inputs, t);
      const auto check =
          check_agreement(index, inputs, run.honest_outputs());
      EXPECT_TRUE(check.ok())
          << graph_family_name(f) << " seed " << seed;
    }
  }
}

TEST(BlockAA, SurvivesEveryApplicableAdversary) {
  const std::size_t n = 7, t = 2;
  Rng graph_rng(0xAD7);
  for (const GraphFamily f : all_graph_families()) {
    const Graph g = make_family_graph(f, 18, graph_rng);
    const BlockIndex index(g);
    const auto inputs = spread_inputs(index, n);
    for (const harness::AdversaryKind kind : harness::all_adversaries()) {
      if (!harness::adversary_applies(harness::ProtocolKind::kBlockAA, kind)) {
        continue;
      }
      Rng rng(0xFEE7);
      harness::AdversaryPlan plan;
      plan.kind = kind;
      plan.victims = sim::random_parties(n, t, rng);
      plan.fuzz_seed = 99;
      if (kind == harness::AdversaryKind::kSplit) {
        plan.split_config =
            core::paths_finder_config(index.agreement_tree(), n, t, {});
        plan.victims = {5, 6};  // split scripts the last t parties
      }
      const auto run =
          run_block_aa(index, inputs, t, {}, harness::make_adversary(plan));
      std::vector<VertexId> honest_inputs;
      for (PartyId p = 0; p < n; ++p) {
        if (run.outputs[p].has_value()) honest_inputs.push_back(inputs[p]);
      }
      ASSERT_FALSE(honest_inputs.empty());
      const auto check =
          check_agreement(index, honest_inputs, run.honest_outputs());
      EXPECT_TRUE(check.valid)
          << graph_family_name(f) << " " << harness::adversary_name(kind);
      EXPECT_TRUE(check.one_agreement)
          << graph_family_name(f) << " " << harness::adversary_name(kind);
    }
  }
}

TEST(BlockAA, SingleVertexAgreementIsImmediate) {
  // All parties share one input: outputs must equal it (hull is a point).
  const Graph g = make_clique_chain(9, 3);
  const BlockIndex index(g);
  const std::vector<VertexId> inputs(7, VertexId{4});
  const auto run = run_block_aa(index, inputs, 2);
  for (const VertexId out : run.honest_outputs()) {
    EXPECT_EQ(out, VertexId{4});
  }
}

TEST(BlockAA, ThreadsNeverChangeReportBytes) {
  Rng rng(0x7D);
  const Graph g = make_random_cactus(20, rng);
  const BlockIndex index(g);
  const auto inputs = spread_inputs(index, 7);
  const auto run_with = [&](std::size_t threads) {
    obs::RunReport report;
    obs::Hooks hooks;
    hooks.report = &report;
    const auto run = run_block_aa(index, inputs, 2, {}, nullptr, &hooks,
                                  sim::EngineOptions{threads});
    return report.to_json(/*include_timings=*/false) +
           std::to_string(run.traffic.total_messages());
  };
  const std::string serial = run_with(1);
  EXPECT_EQ(run_with(2), serial);
  EXPECT_EQ(run_with(4), serial);
}

TEST(BlockAA, ReportCarriesGraphParamsAndRoundBound) {
  const Graph g = make_clique_chain(16, 4);
  const BlockIndex index(g);
  const auto inputs = spread_inputs(index, 7);
  obs::RunReport report;
  obs::Hooks hooks;
  hooks.report = &report;
  const auto run = run_block_aa(index, inputs, 2, {}, nullptr, &hooks);
  EXPECT_EQ(report.protocol, "block_aa");
  const std::string json = report.to_json(false);
  EXPECT_NE(json.find("\"graph_n\""), std::string::npos);
  EXPECT_NE(json.find("\"graph_diameter\""), std::string::npos);
  EXPECT_NE(json.find("\"blocks\""), std::string::npos);
  EXPECT_NE(json.find("\"block_round_bound\""), std::string::npos);
  EXPECT_EQ(run.rounds, block_aa_rounds(index, 7, 2));
}

TEST(BlockAA, LedgerChecksTheBlockRoundBound) {
  const Graph g = make_clique_chain(20, 4);
  const BlockIndex index(g);
  const auto inputs = spread_inputs(index, 7);
  obs::RunReport report;
  obs::Hooks hooks;
  hooks.report = &report;
  (void)run_block_aa(index, inputs, 2, {}, nullptr, &hooks);

  const auto in = exp::ledger_input_from_report(report);
  ASSERT_TRUE(in.has_value());
  EXPECT_EQ(in->protocol, "block_aa");
  ASSERT_TRUE(in->block_round_bound.has_value());
  EXPECT_EQ(in->d0, static_cast<double>(index.diameter()));

  const auto ledger = exp::build_ledger(*in);
  bool found = false;
  for (const auto& check : ledger.checks) {
    if (check.name == "block_round_bound") {
      found = true;
      EXPECT_TRUE(check.ok) << check.detail;
    }
  }
  EXPECT_TRUE(found);
  // An honest diametral run must satisfy every ledger check, the
  // arXiv:2502.05591 round bound included.
  EXPECT_TRUE(ledger.ok());
}

TEST(BlockAA, RegistryRunsBlockAAEndToEnd) {
  const Graph g = make_clique_chain(12, 4);
  const BlockIndex index(g);
  const auto inputs = spread_inputs(index, 7);
  const auto run = harness::run_block_aa(index, 7, 2, inputs);
  const auto check = check_agreement(index, inputs, run.honest_outputs());
  EXPECT_TRUE(check.ok());
  EXPECT_EQ(run.rounds, block_aa_rounds(index, 7, 2));
}

}  // namespace
}  // namespace treeaa::graphs
