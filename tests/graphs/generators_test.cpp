// Block-graph generator families: size exactness, determinism, label
// scheme, and the family-shape contracts the sweep axes rely on.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "graphs/blocks.h"
#include "graphs/generators.h"
#include "graphs/graph.h"
#include "graphs/serialization.h"

namespace treeaa::graphs {
namespace {

TEST(GraphGenerators, ExactSizeForEveryFamilyAndBudget) {
  for (const GraphFamily f : all_graph_families()) {
    for (const std::size_t n : {2u, 3u, 4u, 7u, 12u, 25u, 60u}) {
      Rng rng(n);
      const Graph g = make_family_graph(f, n, rng);
      EXPECT_EQ(g.n(), n) << graph_family_name(f) << " n=" << n;
    }
  }
}

TEST(GraphGenerators, DeterministicForAGivenSeed) {
  for (const GraphFamily f : all_graph_families()) {
    Rng a(42), b(42), c(43);
    const std::string first = graph_to_text(make_family_graph(f, 30, a));
    EXPECT_EQ(graph_to_text(make_family_graph(f, 30, b)), first);
    // Different seed, different random graphs (the deterministic families
    // are naturally exempt).
    if (f == GraphFamily::kTree || f == GraphFamily::kBlockRandom ||
        f == GraphFamily::kCactus) {
      EXPECT_NE(graph_to_text(make_family_graph(f, 30, c)), first)
          << graph_family_name(f);
    }
  }
}

TEST(GraphGenerators, LabelSchemeMatchesTreeGenerators) {
  Rng rng(1);
  const Graph g = make_family_graph(GraphFamily::kBlockRandom, 12, rng);
  // Zero-padded "v<idx>": canonical ids and generation order coincide.
  EXPECT_EQ(g.label(0), "v00");
  EXPECT_EQ(g.label(11), "v11");
}

TEST(GraphGenerators, FamilyShapeContracts) {
  Rng rng(0xFA);
  EXPECT_TRUE(make_family_graph(GraphFamily::kTree, 20, rng).is_tree());
  EXPECT_TRUE(BlockDecomposition(
                  make_family_graph(GraphFamily::kCliqueChain, 20, rng))
                  .all_cliques());
  EXPECT_TRUE(BlockDecomposition(
                  make_family_graph(GraphFamily::kBlockRandom, 20, rng))
                  .all_cliques());
  EXPECT_TRUE(BlockDecomposition(
                  make_family_graph(GraphFamily::kCactus, 20, rng))
                  .cliques_and_cycles());
}

TEST(GraphGenerators, PrimitivesHaveTheRightShape) {
  const BlockDecomposition clique(make_clique(5));
  ASSERT_EQ(clique.blocks().size(), 1u);
  EXPECT_EQ(clique.blocks()[0].shape, BlockShape::kClique);
  EXPECT_EQ(make_clique(5).edge_count(), 10u);

  const BlockDecomposition cycle(make_cycle_graph(6));
  ASSERT_EQ(cycle.blocks().size(), 1u);
  EXPECT_EQ(cycle.blocks()[0].shape, BlockShape::kCycle);

  // C3 == K3 classifies as a clique, not a cycle.
  const BlockDecomposition triangle(make_cycle_graph(3));
  ASSERT_EQ(triangle.blocks().size(), 1u);
  EXPECT_EQ(triangle.blocks()[0].shape, BlockShape::kClique);

  // Clique chain: cliques glued at cut vertices, maximal diameter family.
  const Graph chain = make_clique_chain(10, 4);
  const BlockDecomposition d(chain);
  EXPECT_EQ(d.blocks().size(), 3u);
  EXPECT_EQ(d.cut_count(), 2u);
}

TEST(GraphGenerators, NamesRoundTrip) {
  EXPECT_EQ(all_graph_families().size(), 4u);
  for (const GraphFamily f : all_graph_families()) {
    const std::string name = graph_family_name(f);
    EXPECT_FALSE(name.empty());
    std::size_t matches = 0;
    for (const GraphFamily other : all_graph_families()) {
      if (name == graph_family_name(other)) ++matches;
    }
    EXPECT_EQ(matches, 1u) << name;
  }
}

}  // namespace
}  // namespace treeaa::graphs
