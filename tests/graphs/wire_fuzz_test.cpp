// Adversarial decoding for the graph/block wire codecs. Byzantine parties
// can inject arbitrary byte strings, so — exactly like the gradecast and
// realaa codecs — malformed must always mean nullopt: never a throw, an
// over-read, a crash, or a partially constructed object.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "graphs/blocks.h"
#include "graphs/generators.h"
#include "graphs/graph.h"
#include "graphs/wire.h"

namespace treeaa::graphs {
namespace {

TEST(GraphWireFuzz, GraphRoundTripSurvivesTruncation) {
  Rng rng(0x6F);
  const Graph g = make_random_block_graph(12, rng);
  const Bytes msg = encode_graph(g);
  const auto back = decode_graph(msg);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(encode_graph(*back), msg);
  // Every strict prefix is malformed, never a crash or a partial graph.
  for (std::size_t len = 0; len < msg.size(); ++len) {
    const Bytes prefix(msg.begin(), msg.begin() + static_cast<long>(len));
    EXPECT_EQ(decode_graph(prefix), std::nullopt) << "prefix length " << len;
  }
}

TEST(GraphWireFuzz, GraphRejectsTrailingHostileLengthAndWrongTag) {
  Bytes msg = encode_graph(make_clique(4));
  msg.push_back(0);  // trailing byte
  EXPECT_EQ(decode_graph(msg), std::nullopt);

  // A vertex count far above the hard cap must be rejected before any
  // attempt to allocate or read that many labels.
  ByteWriter w;
  w.u8(kTagGraph);
  w.varint(kMaxWireVertices + 1);
  EXPECT_EQ(decode_graph(std::move(w).take()), std::nullopt);

  ByteWriter edges;
  edges.u8(kTagGraph);
  edges.varint(2);
  edges.str("a");
  edges.str("b");
  edges.varint(kMaxWireEdges + 1);
  EXPECT_EQ(decode_graph(std::move(edges).take()), std::nullopt);

  EXPECT_EQ(decode_graph(Bytes{}), std::nullopt);
  EXPECT_EQ(decode_graph(Bytes{kTagBlocks, 1}), std::nullopt);  // wrong tag
}

TEST(GraphWireFuzz, GraphRejectsNonCanonicalAndInvalidStructure) {
  // Labels out of sorted order: the ids would not be canonical.
  {
    ByteWriter w;
    w.u8(kTagGraph);
    w.varint(2);
    w.str("b");
    w.str("a");
    w.varint(1);
    w.varint(0);
    w.varint(1);
    EXPECT_EQ(decode_graph(std::move(w).take()), std::nullopt);
  }
  // Reserved '~' label.
  {
    ByteWriter w;
    w.u8(kTagGraph);
    w.varint(1);
    w.str("~boom");
    w.varint(0);
    EXPECT_EQ(decode_graph(std::move(w).take()), std::nullopt);
  }
  // Disconnected: two vertices, no edge.
  {
    ByteWriter w;
    w.u8(kTagGraph);
    w.varint(2);
    w.str("a");
    w.str("b");
    w.varint(0);
    EXPECT_EQ(decode_graph(std::move(w).take()), std::nullopt);
  }
  // Edges out of canonical order.
  {
    ByteWriter w;
    w.u8(kTagGraph);
    w.varint(3);
    w.str("a");
    w.str("b");
    w.str("c");
    w.varint(2);
    w.varint(1);
    w.varint(2);
    w.varint(0);
    w.varint(1);
    EXPECT_EQ(decode_graph(std::move(w).take()), std::nullopt);
  }
  // Self-loop shape (u >= v) and out-of-range endpoint.
  {
    ByteWriter w;
    w.u8(kTagGraph);
    w.varint(2);
    w.str("a");
    w.str("b");
    w.varint(1);
    w.varint(1);
    w.varint(1);
    EXPECT_EQ(decode_graph(std::move(w).take()), std::nullopt);
  }
}

TEST(GraphWireFuzz, BlocksRoundTripSurvivesTruncation) {
  Rng rng(0xCAC);
  const Graph g = make_random_cactus(15, rng);
  const BlockDecomposition d(g);
  const Bytes msg = encode_blocks(g.n(), d);
  const auto back = decode_blocks(msg);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), d.blocks().size());
  for (std::size_t i = 0; i < back->size(); ++i) {
    EXPECT_EQ((*back)[i], d.blocks()[i].vertices);
  }
  for (std::size_t len = 0; len < msg.size(); ++len) {
    const Bytes prefix(msg.begin(), msg.begin() + static_cast<long>(len));
    EXPECT_EQ(decode_blocks(prefix), std::nullopt) << "prefix length " << len;
  }
}

TEST(GraphWireFuzz, BlocksFailClosedOnMalformedStructure) {
  // Helper: encode an arbitrary claimed (n, blocks) structure.
  const auto encode_claim = [](std::uint64_t n,
                               const std::vector<std::vector<std::uint64_t>>&
                                   blocks) {
    ByteWriter w;
    w.u8(kTagBlocks);
    w.varint(n);
    w.varint(blocks.size());
    for (const auto& b : blocks) {
      w.varint(b.size());
      for (const std::uint64_t v : b) w.varint(v);
    }
    return std::move(w).take();
  };

  // The valid 4-vertex path {01, 12, 23} decodes...
  EXPECT_TRUE(decode_blocks(encode_claim(4, {{0, 1}, {1, 2}, {2, 3}}))
                  .has_value());
  // ...but every structural violation is rejected:
  // vertex 3 uncovered (identity also breaks).
  EXPECT_EQ(decode_blocks(encode_claim(4, {{0, 1}, {1, 2}})), std::nullopt);
  // block-forest identity violated: sum(|B|-1) != n-1.
  EXPECT_EQ(decode_blocks(encode_claim(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}})),
            std::nullopt);
  // two blocks sharing two vertices.
  EXPECT_EQ(decode_blocks(encode_claim(4, {{0, 1, 2}, {1, 2, 3}})),
            std::nullopt);
  // unsorted vertices inside a block.
  EXPECT_EQ(decode_blocks(encode_claim(3, {{1, 0}, {1, 2}})), std::nullopt);
  // blocks out of canonical order.
  EXPECT_EQ(decode_blocks(encode_claim(3, {{1, 2}, {0, 1}})), std::nullopt);
  // a singleton block.
  EXPECT_EQ(decode_blocks(encode_claim(2, {{0}, {0, 1}})), std::nullopt);
  // out-of-range vertex id.
  EXPECT_EQ(decode_blocks(encode_claim(2, {{0, 5}})), std::nullopt);
  // hostile counts: more blocks than vertices, n above the cap.
  EXPECT_EQ(decode_blocks(encode_claim(1, {{0, 0}, {0, 0}})), std::nullopt);
  ByteWriter w;
  w.u8(kTagBlocks);
  w.varint(kMaxWireVertices + 1);
  EXPECT_EQ(decode_blocks(std::move(w).take()), std::nullopt);
}

TEST(GraphWireFuzz, RandomGarbageNeverDecodesGraphDangerously) {
  Rng rng(0x6A6A);
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes msg(rng.index(96), 0);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next() & 0xFF);
    // Must not throw; a successful decode must re-encode to the same bytes
    // (the codec admits exactly its own canonical encodings).
    const auto g = decode_graph(msg);
    if (g.has_value()) {
      EXPECT_EQ(encode_graph(*g), msg);
    }
  }
}

TEST(GraphWireFuzz, RandomGarbageNeverDecodesBlocksDangerously) {
  Rng rng(0xB10B);
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes msg(rng.index(96), 0);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next() & 0xFF);
    const auto blocks = decode_blocks(msg);
    if (blocks.has_value()) {
      // Whatever decodes must satisfy the full structural contract.
      std::size_t size_sum = 0;
      for (const auto& b : blocks.value()) {
        ASSERT_GE(b.size(), 2u);
        EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
        size_sum += b.size();
      }
      if (!blocks->empty()) {
        EXPECT_EQ(size_sum - blocks->size() + 1,
                  [&] {
                    VertexId max_v = 0;
                    for (const auto& b : blocks.value()) {
                      max_v = std::max(max_v, b.back());
                    }
                    return static_cast<std::size_t>(max_v) + 1;
                  }());
      }
    }
  }
}

TEST(GraphWireFuzz, BitFlipsNeverCrashTheDecoders) {
  // Single-bit corruptions of valid messages must decode cleanly or fail
  // cleanly — the net fault plan's corrupt action produces exactly these.
  Rng rng(0xF11);
  const Graph g = make_random_block_graph(10, rng);
  const Bytes graph_msg = encode_graph(g);
  const Bytes blocks_msg = encode_blocks(g.n(), BlockDecomposition(g));
  for (const Bytes& msg : {graph_msg, blocks_msg}) {
    for (std::size_t byte = 0; byte < msg.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        Bytes flipped = msg;
        flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
        (void)decode_graph(flipped);
        (void)decode_blocks(flipped);
      }
    }
  }
}

}  // namespace
}  // namespace treeaa::graphs
