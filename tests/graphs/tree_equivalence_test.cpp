// The degenerate-case guarantee, pinned byte for byte: on a tree, A(G) == G
// and BlockAA *is* TreeAA — identical transcripts, outputs, traffic and
// run reports across every tree generator family, seed, engine, and
// adversary. This is what makes the graphs subsystem a conservative
// extension: nothing about the tree protocol moved.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/api.h"
#include "graphs/block_aa.h"
#include "graphs/block_index.h"
#include "graphs/graph.h"
#include "harness/registry.h"
#include "obs/report.h"
#include "sim/strategies.h"
#include "sim/trace.h"
#include "trees/generators.h"
#include "trees/serialization.h"

namespace treeaa::graphs {
namespace {

struct Captured {
  std::string transcript;
  std::string report_json;
  std::vector<std::optional<VertexId>> outputs;
  Round rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

std::unique_ptr<sim::Adversary> make_plan_adversary(
    harness::AdversaryKind kind, const LabeledTree& tree, std::size_t n,
    std::size_t t, std::uint64_t seed) {
  Rng rng(seed);
  harness::AdversaryPlan plan;
  plan.kind = kind;
  plan.victims = sim::random_parties(n, t, rng);
  plan.fuzz_seed = seed;
  if (kind == harness::AdversaryKind::kSplit) {
    plan.split_config = core::paths_finder_config(tree, n, t, {});
  }
  return harness::make_adversary(plan);
}

Captured run_tree_side(const LabeledTree& tree,
                       const std::vector<VertexId>& inputs, std::size_t t,
                       core::TreeAAOptions opts,
                       std::unique_ptr<sim::Adversary> adversary) {
  sim::RecordingTracer tracer(/*payloads=*/true);
  obs::RunReport report;
  obs::Hooks hooks;
  hooks.tracer = &tracer;
  hooks.report = &report;
  const auto run =
      core::run_tree_aa(tree, inputs, t, opts, std::move(adversary), &hooks);
  return {tracer.text(), report.to_json(false), run.outputs, run.rounds,
          run.traffic.total_messages(), run.traffic.total_bytes()};
}

Captured run_block_side(const BlockIndex& index,
                        const std::vector<VertexId>& inputs, std::size_t t,
                        BlockAAOptions opts,
                        std::unique_ptr<sim::Adversary> adversary) {
  sim::RecordingTracer tracer(/*payloads=*/true);
  obs::RunReport report;
  obs::Hooks hooks;
  hooks.tracer = &tracer;
  hooks.report = &report;
  const auto run =
      run_block_aa(index, inputs, t, opts, std::move(adversary), &hooks);
  return {tracer.text(), report.to_json(false), run.outputs, run.rounds,
          run.traffic.total_messages(), run.traffic.total_bytes()};
}

TEST(TreeEquivalence, AgreementTreeIsTheTreeItself) {
  Rng rng(0x7E1);
  for (const TreeFamily f : all_tree_families()) {
    const auto tree = make_family_tree(f, 21, rng);
    const BlockIndex index(graph_from_tree(tree));
    EXPECT_EQ(tree_to_text(index.agreement_tree()), tree_to_text(tree))
        << tree_family_name(f);
    EXPECT_EQ(index.diameter(), tree.diameter());
  }
}

TEST(TreeEquivalence, TranscriptsAreByteIdenticalAcrossFamiliesAndSeeds) {
  const std::size_t n = 7, t = 2;
  for (const TreeFamily f : all_tree_families()) {
    for (const std::uint64_t seed : {1ull, 17ull, 400ull}) {
      Rng rng(seed);
      const auto tree = make_family_tree(f, 19, rng);
      const BlockIndex index(graph_from_tree(tree));
      std::vector<VertexId> inputs;
      for (std::size_t p = 0; p < n; ++p) {
        inputs.push_back(static_cast<VertexId>(rng.index(tree.n())));
      }
      const auto tree_run = run_tree_side(tree, inputs, t, {}, nullptr);
      const auto block_run = run_block_side(index, inputs, t, {}, nullptr);
      EXPECT_EQ(block_run.transcript, tree_run.transcript)
          << tree_family_name(f) << " seed " << seed;
      EXPECT_EQ(block_run.outputs, tree_run.outputs);
      EXPECT_EQ(block_run.rounds, tree_run.rounds);
      EXPECT_EQ(block_run.messages, tree_run.messages);
      EXPECT_EQ(block_run.bytes, tree_run.bytes);
    }
  }
}

TEST(TreeEquivalence, HoldsUnderEveryAdversaryAndEngine) {
  const std::size_t n = 7, t = 2;
  Rng rng(0xE0);
  const auto tree = make_family_tree(TreeFamily::kCaterpillar, 16, rng);
  const BlockIndex index(graph_from_tree(tree));
  std::vector<VertexId> inputs;
  for (std::size_t p = 0; p < n; ++p) {
    inputs.push_back(static_cast<VertexId>(rng.index(tree.n())));
  }
  for (const harness::AdversaryKind kind : harness::all_adversaries()) {
    if (!harness::adversary_applies(harness::ProtocolKind::kTreeAA, kind) ||
        !harness::adversary_applies(harness::ProtocolKind::kBlockAA, kind)) {
      continue;
    }
    for (const auto engine : {core::RealEngineKind::kGradecastBdh,
                              core::RealEngineKind::kClassicHalving}) {
      core::TreeAAOptions opts;
      opts.engine = engine;
      const auto tree_run = run_tree_side(
          tree, inputs, t, opts, make_plan_adversary(kind, tree, n, t, 77));
      const auto block_run = run_block_side(
          index, inputs, t, opts, make_plan_adversary(kind, tree, n, t, 77));
      EXPECT_EQ(block_run.transcript, tree_run.transcript)
          << harness::adversary_name(kind);
      EXPECT_EQ(block_run.outputs, tree_run.outputs);
      EXPECT_EQ(block_run.messages, tree_run.messages);
    }
  }
}

TEST(TreeEquivalence, PerRoundConvergenceSeriesMatches) {
  // The probes measure BlockAA diameters in the graph metric; on a tree
  // that metric *is* the tree metric, so the per-round series — and with
  // it every ledger verdict downstream — must agree sample for sample.
  // (The reports differ only in protocol identity and the graph params.)
  const std::size_t t = 2;
  Rng rng(0x5E);
  const auto tree = make_family_tree(TreeFamily::kRandom, 24, rng);
  const BlockIndex index(graph_from_tree(tree));
  const auto inputs = std::vector<VertexId>{
      static_cast<VertexId>(tree.diameter_endpoints().first),
      static_cast<VertexId>(tree.diameter_endpoints().second),
      0, 1, 2, 3, 4};

  obs::RunReport tree_report, block_report;
  obs::Hooks tree_hooks, block_hooks;
  tree_hooks.report = &tree_report;
  block_hooks.report = &block_report;
  (void)core::run_tree_aa(tree, inputs, t, {}, nullptr, &tree_hooks);
  (void)run_block_aa(index, inputs, t, {}, nullptr, &block_hooks);

  ASSERT_EQ(block_report.per_round.size(), tree_report.per_round.size());
  for (std::size_t i = 0; i < block_report.per_round.size(); ++i) {
    EXPECT_EQ(block_report.per_round[i].round, tree_report.per_round[i].round);
    EXPECT_EQ(block_report.per_round[i].value_diameter,
              tree_report.per_round[i].value_diameter);
  }
}

}  // namespace
}  // namespace treeaa::graphs
