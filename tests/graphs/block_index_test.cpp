// BlockIndex closed forms against naive BFS oracles: distance, median,
// geodesic, projection, hull membership, diameter — across every generator
// family (clique blocks get the full geodetic query surface, cacti the
// distance/median subset that stays defined with cycle blocks).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "graphs/block_index.h"
#include "graphs/check.h"
#include "graphs/generators.h"
#include "graphs/graph.h"

namespace treeaa::graphs {
namespace {

/// All-pairs BFS distance table.
std::vector<std::vector<std::uint32_t>> distance_table(const Graph& g) {
  std::vector<std::vector<std::uint32_t>> d;
  for (VertexId v = 0; v < g.n(); ++v) d.push_back(g.bfs_distances(v));
  return d;
}

std::vector<Graph> family_samples(std::size_t n) {
  std::vector<Graph> out;
  Rng rng(0x1D0);
  for (const GraphFamily f : all_graph_families()) {
    out.push_back(make_family_graph(f, n, rng));
  }
  return out;
}

TEST(BlockIndex, DistanceMatchesBfsOracle) {
  for (const std::size_t n : {2u, 6u, 17u, 33u}) {
    for (const Graph& g : family_samples(n)) {
      const BlockIndex index(g);
      const auto d = distance_table(g);
      for (VertexId u = 0; u < g.n(); ++u) {
        for (VertexId v = 0; v < g.n(); ++v) {
          EXPECT_EQ(index.distance(u, v), d[u][v])
              << g.label(u) << " .. " << g.label(v);
        }
      }
    }
  }
}

TEST(BlockIndex, DiameterMatchesOracleAndEndpointsAttainIt) {
  for (const Graph& g : family_samples(21)) {
    const BlockIndex index(g);
    const auto d = distance_table(g);
    std::uint32_t want = 0;
    for (VertexId u = 0; u < g.n(); ++u) {
      want = std::max(want, *std::max_element(d[u].begin(), d[u].end()));
    }
    EXPECT_EQ(index.diameter(), want);
    const auto [a, b] = index.diameter_endpoints();
    EXPECT_EQ(d[a][b], want);
  }
}

TEST(BlockIndex, MedianMinimizesDistanceSumWithSmallestIdTieBreak) {
  Rng triples(0x3AD);
  for (const Graph& g : family_samples(19)) {
    const BlockIndex index(g);
    const auto d = distance_table(g);
    for (int iter = 0; iter < 60; ++iter) {
      const VertexId a = static_cast<VertexId>(triples.index(g.n()));
      const VertexId b = static_cast<VertexId>(triples.index(g.n()));
      const VertexId c = static_cast<VertexId>(triples.index(g.n()));
      std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
      VertexId best_v = 0;
      for (VertexId v = 0; v < g.n(); ++v) {
        const std::uint64_t sum =
            std::uint64_t{d[v][a]} + d[v][b] + d[v][c];
        if (sum < best) {
          best = sum;
          best_v = v;
        }
      }
      EXPECT_EQ(index.median(a, b, c), best_v)
          << g.label(a) << " " << g.label(b) << " " << g.label(c);
    }
  }
}

TEST(BlockIndex, GeodesicIsTheShortestPath) {
  Rng pairs(0x6E0);
  for (const Graph& g : family_samples(23)) {
    const BlockIndex index(g);
    if (!index.all_cliques()) continue;  // geodetic queries need cliques
    for (int iter = 0; iter < 40; ++iter) {
      const VertexId u = static_cast<VertexId>(pairs.index(g.n()));
      const VertexId v = static_cast<VertexId>(pairs.index(g.n()));
      const auto path = index.geodesic(u, v);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), u);
      EXPECT_EQ(path.back(), v);
      EXPECT_EQ(path.size(), index.distance(u, v) + 1u);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
      }
    }
  }
}

TEST(BlockIndex, ProjectionIsTheClosestGeodesicVertex) {
  Rng triples(0x960);
  for (const Graph& g : family_samples(23)) {
    const BlockIndex index(g);
    if (!index.all_cliques()) continue;
    for (int iter = 0; iter < 40; ++iter) {
      const VertexId a = static_cast<VertexId>(triples.index(g.n()));
      const VertexId b = static_cast<VertexId>(triples.index(g.n()));
      const VertexId c = static_cast<VertexId>(triples.index(g.n()));
      const auto path = index.geodesic(a, b);
      std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
      VertexId best_v = 0;
      for (const VertexId v : path) {
        const std::uint32_t dist = index.distance(v, c);
        if (dist < best || (dist == best && v < best_v)) {
          best = dist;
          best_v = v;
        }
      }
      EXPECT_EQ(index.project_onto_geodesic(a, b, c), best_v);
    }
  }
}

TEST(BlockIndex, HullMatchesNaiveClosure) {
  Rng spans(0x8011);
  for (const Graph& g : family_samples(15)) {
    const BlockIndex index(g);
    if (!index.all_cliques()) continue;
    for (int iter = 0; iter < 12; ++iter) {
      std::vector<VertexId> s;
      const std::size_t k = 1 + spans.index(4);
      for (std::size_t i = 0; i < k; ++i) {
        s.push_back(static_cast<VertexId>(spans.index(g.n())));
      }
      const auto fast = index.hull(s);
      const auto naive = naive_hull(g, s);
      EXPECT_EQ(fast, naive);
      for (VertexId w = 0; w < g.n(); ++w) {
        EXPECT_EQ(index.in_hull(s, w),
                  std::binary_search(naive.begin(), naive.end(), w));
      }
    }
  }
}

TEST(BlockIndex, ResolveMapsBlockNodesToGates) {
  const Graph g = make_clique_chain(13, 4);
  const BlockIndex index(g);
  for (VertexId v = 0; v < g.n(); ++v) {
    // Vertex nodes resolve to themselves regardless of the perspective.
    EXPECT_EQ(index.resolve(index.to_agreement(v), 0), v);
    EXPECT_EQ(index.to_vertex(index.to_agreement(v)), v);
  }
  for (VertexId a = 0; a < index.agreement_tree().n(); ++a) {
    if (index.is_vertex_node(a)) continue;
    for (VertexId toward = 0; toward < g.n(); ++toward) {
      const VertexId gate = index.resolve(a, toward);
      // The gate is a vertex of the block the node stands for, and no block
      // vertex is strictly closer to the perspective vertex.
      const auto nbrs = index.agreement_tree().neighbors(a);
      EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), index.to_agreement(gate)),
                nbrs.end());
      for (const VertexId other : index.agreement_tree().neighbors(a)) {
        EXPECT_LE(index.distance(gate, toward),
                  index.distance(index.to_vertex(other), toward));
      }
    }
  }
}

TEST(GraphCheck, SafeAreaMatchesComponentOracle) {
  Rng rng(0x5AFE);
  const Graph g = make_random_cactus(18, rng);
  const std::vector<VertexId> inputs{0, 3, 7, 11, 14};
  const std::size_t t = 1;
  const auto safe = safe_vertices(g, inputs, t);
  EXPECT_TRUE(std::is_sorted(safe.begin(), safe.end()));
  for (VertexId v = 0; v < g.n(); ++v) {
    EXPECT_EQ(is_safe(g, inputs, t, v),
              std::binary_search(safe.begin(), safe.end(), v));
  }
  // An input vertex containing a strict majority of the mass is t-safe.
  const std::vector<VertexId> all_same{5, 5, 5, 5, 5};
  EXPECT_TRUE(is_safe(g, all_same, 1, 5));
}

}  // namespace
}  // namespace treeaa::graphs
