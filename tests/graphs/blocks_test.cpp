// Block-cut decomposition invariants against naive oracles, and the
// agreement-tree construction (including the degenerate A(G) == G case).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "graphs/blocks.h"
#include "graphs/generators.h"
#include "graphs/graph.h"
#include "trees/generators.h"
#include "trees/serialization.h"

namespace treeaa::graphs {
namespace {

/// Articulation oracle: v is a cut vertex iff G - v is disconnected (BFS
/// over the surviving vertices).
bool is_articulation(const Graph& g, VertexId cut) {
  if (g.n() <= 2) return false;
  std::vector<bool> seen(g.n(), false);
  seen[cut] = true;
  const VertexId start = cut == 0 ? 1 : 0;
  std::vector<VertexId> queue{start};
  seen[start] = true;
  std::size_t visited = 1;
  while (!queue.empty()) {
    const VertexId v = queue.back();
    queue.pop_back();
    for (const VertexId u : g.neighbors(v)) {
      if (!seen[u]) {
        seen[u] = true;
        ++visited;
        queue.push_back(u);
      }
    }
  }
  return visited != g.n() - 1;
}

std::vector<Graph> sample_graphs() {
  std::vector<Graph> out;
  Rng rng(0xB10C);
  for (const GraphFamily f : all_graph_families()) {
    for (const std::size_t n : {2u, 5u, 13u, 30u}) {
      out.push_back(make_family_graph(f, n, rng));
    }
  }
  out.push_back(make_clique(6));
  out.push_back(make_cycle_graph(8));
  out.push_back(Graph::single("only"));
  return out;
}

TEST(Blocks, EveryEdgeInExactlyOneBlock) {
  for (const Graph& g : sample_graphs()) {
    const BlockDecomposition d(g);
    std::set<std::pair<VertexId, VertexId>> covered;
    for (const Block& b : d.blocks()) {
      for (const auto& e : b.edges) {
        EXPECT_TRUE(covered.insert(e).second)
            << "edge in two blocks: " << g.label(e.first) << "-"
            << g.label(e.second);
        EXPECT_TRUE(g.has_edge(e.first, e.second));
      }
    }
    EXPECT_EQ(covered.size(), g.edge_count());
  }
}

TEST(Blocks, CutVerticesMatchArticulationOracle) {
  for (const Graph& g : sample_graphs()) {
    const BlockDecomposition d(g);
    std::size_t cuts = 0;
    for (VertexId v = 0; v < g.n(); ++v) {
      EXPECT_EQ(d.is_cut(v), is_articulation(g, v)) << g.label(v);
      if (d.is_cut(v)) ++cuts;
    }
    EXPECT_EQ(d.cut_count(), cuts);
  }
}

TEST(Blocks, BlocksOfAndShareBlockAgree) {
  for (const Graph& g : sample_graphs()) {
    const BlockDecomposition d(g);
    for (VertexId v = 0; v < g.n(); ++v) {
      const auto& in = d.blocks_of(v);
      EXPECT_TRUE(std::is_sorted(in.begin(), in.end()));
      // A vertex sits in > 1 block exactly when it is a cut vertex.
      EXPECT_EQ(in.size() > 1, d.is_cut(v));
      for (const std::size_t b : in) {
        EXPECT_TRUE(d.blocks()[b].contains(v));
      }
    }
    // Distance-1 pairs always share a block.
    for (const auto& [u, v] : g.edges()) {
      EXPECT_TRUE(d.share_block(u, v));
      EXPECT_TRUE(d.share_block(v, u));
    }
  }
}

TEST(Blocks, CanonicalOrderAndShapes) {
  for (const Graph& g : sample_graphs()) {
    const BlockDecomposition d(g);
    for (std::size_t i = 0; i + 1 < d.blocks().size(); ++i) {
      EXPECT_LT(d.blocks()[i].vertices, d.blocks()[i + 1].vertices);
    }
    for (const Block& b : d.blocks()) {
      EXPECT_TRUE(std::is_sorted(b.vertices.begin(), b.vertices.end()));
      const std::size_t k = b.size();
      switch (b.shape) {
        case BlockShape::kEdge:
          EXPECT_EQ(k, 2u);
          EXPECT_EQ(b.edges.size(), 1u);
          break;
        case BlockShape::kClique:
          EXPECT_GE(k, 3u);
          EXPECT_EQ(b.edges.size(), k * (k - 1) / 2);
          break;
        case BlockShape::kCycle:
          EXPECT_GE(k, 4u);  // C3 classifies as a clique
          EXPECT_EQ(b.edges.size(), k);
          break;
        case BlockShape::kOther:
          ADD_FAILURE() << "generator produced an unclassified block";
          break;
      }
    }
  }
  // Family predicates.
  Rng rng(2);
  EXPECT_TRUE(BlockDecomposition(make_clique_chain(20)).all_cliques());
  const BlockDecomposition cactus(make_random_cactus(30, rng));
  EXPECT_TRUE(cactus.cliques_and_cycles());
}

TEST(AgreementTree, EqualsTheGraphOnTrees) {
  // On a tree every block is a K2 edge: no synthetic nodes, A(G) == G.
  Rng rng(0xA9);
  for (const TreeFamily f : all_tree_families()) {
    const auto tree = make_family_tree(f, 17, rng);
    const Graph g = graph_from_tree(tree);
    const auto at = build_agreement_tree(g, BlockDecomposition(g));
    EXPECT_EQ(tree_to_text(at.tree), tree_to_text(tree))
        << tree_family_name(f);
    for (VertexId v = 0; v < g.n(); ++v) {
      EXPECT_EQ(at.vertex_to_node[v], v);
      EXPECT_TRUE(at.is_vertex_node(v));
    }
  }
}

TEST(AgreementTree, BlockNodesForLargeBlocksOnly) {
  Rng rng(0xAB);
  for (const Graph& g :
       {make_clique_chain(25), make_random_cactus(25, rng)}) {
    const BlockDecomposition d(g);
    const auto at = build_agreement_tree(g, d);
    std::size_t large = 0;
    for (const Block& b : d.blocks()) {
      if (b.size() >= 3) ++large;
    }
    EXPECT_EQ(at.tree.n(), g.n() + large);
    std::size_t synthetic = 0;
    for (VertexId a = 0; a < at.tree.n(); ++a) {
      if (at.is_vertex_node(a)) {
        // Vertex nodes keep their G label; round trip through the maps.
        const VertexId v = at.node_to_vertex[a];
        EXPECT_EQ(at.vertex_to_node[v], a);
        EXPECT_EQ(at.tree.label(a), g.label(v));
        EXPECT_FALSE(at.node_to_block[a].has_value());
      } else {
        ++synthetic;
        // Synthetic nodes carry the reserved '~' prefix and point at their
        // block; their neighbors are exactly the block's vertices.
        EXPECT_EQ(at.tree.label(a)[0], '~');
        ASSERT_TRUE(at.node_to_block[a].has_value());
        const Block& b = d.blocks()[*at.node_to_block[a]];
        EXPECT_EQ(at.block_to_node[*at.node_to_block[a]], a);
        EXPECT_EQ(at.tree.degree(a), b.size());
      }
    }
    EXPECT_EQ(synthetic, large);
  }
}

}  // namespace
}  // namespace treeaa::graphs
