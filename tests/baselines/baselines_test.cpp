// Baseline protocols: the DLPSW-style iterated AA on R and the NR-style
// iterated AA on trees. Same AA guarantees, more rounds — the comparison
// TreeAA is measured against.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/iterated_real_aa.h"
#include "baselines/iterated_tree_aa.h"
#include "core/api.h"
#include "harness/runner.h"
#include "sim/strategies.h"
#include "trees/generators.h"

namespace treeaa::baselines {
namespace {

TEST(IteratedRealAA, IterationCountIsLogarithmic) {
  IteratedRealConfig cfg{4, 1, 1.0, 1024.0};
  EXPECT_EQ(cfg.iterations(), 10u);
  EXPECT_EQ(cfg.rounds(), 30u);
  cfg.known_range = 0.5;
  EXPECT_EQ(cfg.iterations(), 0u);
}

TEST(IteratedRealAA, HonestRunAchievesEpsAgreement) {
  IteratedRealConfig cfg{7, 2, 1.0, 500.0};
  const auto inputs = harness::spread_real_inputs(7, 0.0, 500.0);
  const auto run = harness::run_iterated_real_aa(cfg, inputs);
  EXPECT_EQ(run.rounds, cfg.rounds());
  EXPECT_LE(run.output_range(), cfg.eps);
  for (const double v : run.honest_outputs()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 500.0);
  }
}

TEST(IteratedRealAA, HalvesRangePerIterationInHonestRuns) {
  IteratedRealConfig cfg{4, 1, 1.0, 256.0};
  const std::vector<double> inputs{0.0, 256.0, 0.0, 256.0};
  const auto run = harness::run_iterated_real_aa(cfg, inputs);
  for (std::size_t k = 1; k <= cfg.iterations(); ++k) {
    double lo = 1e18, hi = -1e18;
    for (const auto& h : run.histories) {
      if (h.empty()) continue;
      lo = std::min(lo, h[k]);
      hi = std::max(hi, h[k]);
    }
    const double prev_range = 256.0 * std::pow(0.5, static_cast<double>(k - 1));
    EXPECT_LE(hi - lo, prev_range / 2 + 1e-9) << "iteration " << k;
  }
}

TEST(IteratedRealAA, ToleratesByzantine) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    IteratedRealConfig cfg{10, 3, 1.0, 1000.0};
    Rng rng(seed);
    const auto inputs = harness::random_real_inputs(10, 0.0, 1000.0, rng);
    auto victims = sim::random_parties(10, 3, rng);
    std::unique_ptr<sim::Adversary> adv;
    if (seed % 2 == 0) {
      adv = std::make_unique<sim::FuzzAdversary>(victims, seed, 20, 40);
    } else {
      adv = std::make_unique<sim::SilentAdversary>(victims);
    }
    const auto run =
        harness::run_iterated_real_aa(cfg, inputs, std::move(adv));
    EXPECT_LE(run.output_range(), cfg.eps) << "seed " << seed;
    // Validity against honest inputs.
    double lo = 1e18, hi = -1e18;
    for (PartyId p = 0; p < 10; ++p) {
      if (std::find(victims.begin(), victims.end(), p) != victims.end()) {
        continue;
      }
      lo = std::min(lo, inputs[p]);
      hi = std::max(hi, inputs[p]);
    }
    for (const double v : run.honest_outputs()) {
      EXPECT_GE(v, lo - 1e-12);
      EXPECT_LE(v, hi + 1e-12);
    }
  }
}

TEST(IteratedRealAA, NeedsMoreRoundsThanRealAAForLargeRanges) {
  // The headline gap: ceil(log2 D) iterations vs RealAA's log/loglog.
  realaa::Config fast;
  fast.n = 7;
  fast.t = 2;
  fast.eps = 1.0;
  fast.known_range = 1e6;
  IteratedRealConfig slow{7, 2, 1.0, 1e6};
  EXPECT_GT(slow.rounds(), fast.rounds());
}

// --- Iterated tree AA --------------------------------------------------------

TEST(IteratedTreeAA, VertexCodecRejectsOutOfRange) {
  EXPECT_EQ(*decode_vertex(encode_vertex(5), 10), 5u);
  EXPECT_FALSE(decode_vertex(encode_vertex(10), 10).has_value());
  EXPECT_FALSE(decode_vertex(Bytes{}, 10).has_value());
  Bytes trailing = encode_vertex(1);
  trailing.push_back(7);
  EXPECT_FALSE(decode_vertex(trailing, 10).has_value());
}

TEST(IteratedTreeAA, TrivialTreeTerminatesImmediately) {
  const auto tree = make_path(2);
  const std::vector<VertexId> inputs{0, 1, 0, 1};
  const auto run = harness::run_iterated_tree_aa(tree, 4, 1, inputs);
  EXPECT_EQ(run.rounds, 0u);
  const auto check =
      core::check_agreement(tree, inputs, run.honest_outputs());
  EXPECT_TRUE(check.ok());
}

TEST(IteratedTreeAA, HonestRunsAchieveTreeAA) {
  Rng rng(404);
  for (const TreeFamily family : all_tree_families()) {
    const auto tree = make_family_tree(family, 40, rng);
    const std::size_t n = 7, t = 2;
    const auto inputs = harness::random_vertex_inputs(tree, n, rng);
    const auto run = harness::run_iterated_tree_aa(tree, n, t, inputs);
    const auto check =
        core::check_agreement(tree, inputs, run.honest_outputs());
    EXPECT_TRUE(check.valid) << tree_family_name(family);
    EXPECT_TRUE(check.one_agreement)
        << tree_family_name(family) << " max distance "
        << check.max_pairwise_distance;
  }
}

TEST(IteratedTreeAA, ToleratesByzantineAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const auto tree = make_random_tree(10 + rng.index(50), rng);
    const std::size_t n = 10, t = 3;
    const auto inputs = harness::random_vertex_inputs(tree, n, rng);
    auto victims = sim::random_parties(n, t, rng);
    std::unique_ptr<sim::Adversary> adv;
    if (seed % 2 == 0) {
      adv = std::make_unique<sim::FuzzAdversary>(victims, seed, 24, 32);
    } else {
      adv = std::make_unique<sim::SilentAdversary>(victims);
    }
    const auto run =
        harness::run_iterated_tree_aa(tree, n, t, inputs, std::move(adv));
    std::vector<VertexId> honest_inputs;
    for (PartyId p = 0; p < n; ++p) {
      if (std::find(victims.begin(), victims.end(), p) == victims.end()) {
        honest_inputs.push_back(inputs[p]);
      }
    }
    const auto check =
        core::check_agreement(tree, honest_inputs, run.honest_outputs());
    EXPECT_TRUE(check.valid) << "seed " << seed;
    EXPECT_TRUE(check.one_agreement)
        << "seed " << seed << " max d " << check.max_pairwise_distance;
  }
}

TEST(IteratedTreeAA, RoundsGrowWithDiameterNotSize) {
  IteratedTreeConfig cfg{7, 2};
  const auto long_path = make_path(1024);
  const auto big_star = make_star(1024);
  EXPECT_GT(cfg.rounds(long_path), cfg.rounds(big_star));
  EXPECT_EQ(cfg.iterations(big_star),
            1 + IteratedTreeConfig::kSlackIterations);  // log2(2) = 1
}

}  // namespace
}  // namespace treeaa::baselines
