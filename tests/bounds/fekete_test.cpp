// Fekete's bound calculators (Theorems 1 and 2).
#include "bounds/fekete.h"

#include <gtest/gtest.h>

#include <cmath>

#include "realaa/rounds.h"

namespace treeaa::bounds {
namespace {

TEST(BudgetProduct, BalancedPartitionIsOptimal) {
  // t = 6, R = 3: balanced {2,2,2} -> product 8.
  EXPECT_NEAR(log_best_budget_product(6, 3), std::log(8.0), 1e-12);
  // t = 7, R = 3: {3,2,2} -> 12.
  EXPECT_NEAR(log_best_budget_product(7, 3), std::log(12.0), 1e-12);
  // t = 4, R = 3: {2,1,1} -> 2.
  EXPECT_NEAR(log_best_budget_product(4, 3), std::log(2.0), 1e-12);
}

TEST(BudgetProduct, ExhaustiveSearchAgreesOnSmallInstances) {
  // Brute-force over all compositions of at most t into R parts >= 1.
  for (std::size_t t = 1; t <= 10; ++t) {
    for (std::size_t R = 1; R <= 4; ++R) {
      double best = 1.0;  // empty/degenerate product
      // Enumerate R-tuples with entries in [1, t].
      std::vector<std::size_t> parts(R, 1);
      while (true) {
        std::size_t sum = 0;
        double prod = 1;
        for (const std::size_t p : parts) {
          sum += p;
          prod *= static_cast<double>(p);
        }
        if (sum <= t) best = std::max(best, prod);
        // Increment the tuple.
        std::size_t i = 0;
        while (i < R && parts[i] == t) parts[i++] = 1;
        if (i == R) break;
        ++parts[i];
      }
      EXPECT_NEAR(log_best_budget_product(t, R), std::log(best), 1e-9)
          << "t=" << t << " R=" << R;
    }
  }
}

TEST(BudgetProduct, DegenerateBudget) {
  EXPECT_EQ(log_best_budget_product(0, 3), 0.0);  // product 1
  EXPECT_EQ(log_best_budget_product(2, 5), 0.0);
  EXPECT_THROW((void)log_best_budget_product(3, 0), std::invalid_argument);
}

TEST(FeketeK, ExactMatchesSimplifiedWhenBudgetDividesEvenly) {
  // With R | t the balanced integer partition is exactly (t/R)^R, so the
  // exact and simplified forms coincide.
  for (const auto& [t, R] : std::vector<std::pair<std::size_t, std::size_t>>{
           {4, 2}, {6, 3}, {8, 4}, {9, 3}, {12, 4}}) {
    const std::size_t n = 3 * t + 1;
    for (double D : {10.0, 1e4, 1e9}) {
      EXPECT_NEAR(log_fekete_k(R, D, n, t), log_fekete_k_simple(R, D, n, t),
                  1e-9)
          << "t=" << t << " R=" << R << " D=" << D;
    }
  }
}

TEST(FeketeK, ExactDominatesFlooredSimplified) {
  // The continuous t^R/R^R can exceed the integer optimum (t=3, R=2 gives
  // {2,1} -> 2 < 2.25), but the floor-based form max(floor(t/R),1)^R never
  // does.
  for (std::size_t n : {4u, 10u, 31u}) {
    const std::size_t t = (n - 1) / 3;
    for (std::size_t R = 1; R <= 12; ++R) {
      for (double D : {10.0, 1e4, 1e9}) {
        const double q = std::max<double>(
            1.0, std::floor(static_cast<double>(t) / static_cast<double>(R)));
        const double floored =
            std::log(D) + static_cast<double>(R) *
                              (std::log(q) -
                               std::log(static_cast<double>(n + t)));
        EXPECT_GE(log_fekete_k(R, D, n, t) + 1e-9, floored)
            << "n=" << n << " R=" << R << " D=" << D;
      }
    }
  }
}

TEST(FeketeK, DecreasesInRounds) {
  for (std::size_t R = 1; R < 20; ++R) {
    EXPECT_GT(log_fekete_k(R, 1e12, 10, 3), log_fekete_k(R + 1, 1e12, 10, 3));
  }
}

TEST(LowerBoundRounds, TrivialAndSmallCases) {
  EXPECT_EQ(lower_bound_rounds(1.0, 10, 3), 0u);
  EXPECT_EQ(lower_bound_rounds(0.0, 10, 3), 0u);
  EXPECT_GE(lower_bound_rounds(2.0, 10, 3), 1u);
}

TEST(LowerBoundRounds, GrowsWithDiameter) {
  std::size_t prev = 0;
  for (double D = 2; D < 1e15; D *= 10) {
    const std::size_t r = lower_bound_rounds(D, 10, 3);
    EXPECT_GE(r, prev);
    prev = r;
  }
  EXPECT_GE(prev, 5u);
}

TEST(LowerBoundRounds, ShrinksWithMoreParties) {
  // More parties per corruption -> weaker bound (log((n+t)/t) grows).
  const double D = 1e9;
  EXPECT_GE(lower_bound_rounds(D, 10, 3), lower_bound_rounds(D, 1000, 3));
}

TEST(LowerBoundRounds, DefinitionIsExact) {
  // R* is the smallest R with K(R, D) <= 1.
  for (double D : {50.0, 1e5, 1e10}) {
    const std::size_t r = lower_bound_rounds(D, 13, 4);
    EXPECT_LE(log_fekete_k(r, D, 13, 4), 0.0);
    if (r > 1) {
      EXPECT_GT(log_fekete_k(r - 1, D, 13, 4), 0.0);
    }
  }
}

TEST(Theorem2ClosedForm, MatchesAsymptoticShape) {
  EXPECT_EQ(theorem2_closed_form(2.0, 10, 3), 0.0);  // guarded
  EXPECT_EQ(theorem2_closed_form(1e6, 10, 0), 0.0);  // t = 0
  const double r1 = theorem2_closed_form(1e3, 10, 3);
  const double r2 = theorem2_closed_form(1e9, 10, 3);
  EXPECT_GT(r2, r1);
  EXPECT_GT(r1, 0.0);
}

TEST(Theorem2, UpperAndLowerBoundsAreConsistent) {
  // The protocol's round count (Theorem 3 bound, for the reduction's
  // D <= 2|V|) must exceed the lower bound for every configuration — i.e.
  // the theory is internally consistent in this implementation.
  for (double D : {10.0, 1e3, 1e6, 1e12}) {
    for (std::size_t n : {4u, 16u, 64u}) {
      const std::size_t t = (n - 1) / 3;
      const std::size_t lower = lower_bound_rounds(D, n, t);
      const std::size_t upper =
          3 * realaa::iterations_paper_sufficient(D, 1.0);
      EXPECT_LE(lower, std::max<std::size_t>(upper, 1))
          << "D=" << D << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace treeaa::bounds
