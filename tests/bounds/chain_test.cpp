// The executable Fekete chain (one-round case of Theorem 1).
#include "bounds/chain.h"

#include <gtest/gtest.h>

#include <cmath>

#include "bounds/fekete.h"
#include "realaa/real_aa.h"

namespace treeaa::bounds {
namespace {

realaa::UpdateRule kMean = realaa::UpdateRule::kTrimmedMean;

DecisionRule trimmed_rule(std::size_t t, realaa::UpdateRule rule) {
  return [t, rule](const std::vector<double>& view) {
    return realaa::trimmed_update(view, t, rule);
  };
}

TEST(FeketeChain, ConstructionIsValid) {
  for (std::size_t n : {4u, 7u, 10u, 16u}) {
    for (std::size_t t = 1; 3 * t < n; ++t) {
      const auto chain = fekete_chain_r1(n, t, 0.0, 100.0);
      EXPECT_TRUE(verify_chain_r1(chain, n, t, 0.0, 100.0))
          << "n=" << n << " t=" << t;
      EXPECT_EQ(chain.size(), (n + t - 1) / t + 1);
    }
  }
}

TEST(FeketeChain, VerifyRejectsBrokenChains) {
  auto chain = fekete_chain_r1(6, 2, 0.0, 1.0);
  EXPECT_TRUE(verify_chain_r1(chain, 6, 2, 0.0, 1.0));
  // Wrong endpoint.
  auto bad_end = chain;
  bad_end.back()[0] = 0.5;
  EXPECT_FALSE(verify_chain_r1(bad_end, 6, 2, 0.0, 1.0));
  // Too-large step: claim only t = 1 was allowed.
  EXPECT_FALSE(verify_chain_r1(chain, 6, 1, 0.0, 1.0));
  // Wrong width.
  EXPECT_FALSE(verify_chain_r1(chain, 7, 2, 0.0, 1.0));
}

TEST(FeketeChain, TrimmedRulesCannotBeatTheChainBound) {
  // The pigeonhole gap (b-a)/s must appear for ANY decision rule; check the
  // library's own rules against it and against K(1, D).
  const double D = 1000.0;
  for (std::size_t n : {4u, 7u, 13u, 25u}) {
    const std::size_t t = (n - 1) / 3;
    if (t == 0) continue;
    const auto chain = fekete_chain_r1(n, t, 0.0, D);
    const double s = static_cast<double>(chain.size() - 1);
    for (const auto rule :
         {realaa::UpdateRule::kTrimmedMean,
          realaa::UpdateRule::kTrimmedMidpoint}) {
      const double gap = max_adjacent_gap(chain, trimmed_rule(t, rule));
      EXPECT_GE(gap + 1e-9, D / s) << "n=" << n << " rule "
                                   << static_cast<int>(rule);
      // And therefore at least the exact one-round Fekete bound
      // K(1, D) = D * t/(n + t), which is weaker than D/ceil(n/t).
      EXPECT_GE(gap + 1e-9, std::exp(log_fekete_k(1, D, n, t)));
    }
  }
}

TEST(FeketeChain, ValidityPinsTheEndpoints) {
  // f(all-a) = a and f(all-b) = b for the trimmed rules — the property the
  // chain argument leans on.
  const auto chain = fekete_chain_r1(10, 3, -5.0, 7.0);
  const auto f = trimmed_rule(3, kMean);
  EXPECT_EQ(f(chain.front()), -5.0);
  EXPECT_EQ(f(chain.back()), 7.0);
}

TEST(FeketeChain, RejectsDegenerateParameters) {
  EXPECT_THROW((void)fekete_chain_r1(4, 0, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)fekete_chain_r1(4, 4, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)fekete_chain_r1(4, 1, 2, 1), std::invalid_argument);
}

}  // namespace
}  // namespace treeaa::bounds
