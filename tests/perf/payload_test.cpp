// Payload / PayloadPool: refcounted sharing, copy-on-write detachment,
// take() semantics, control-block recycling, and the Mailer broadcast
// interning that motivates the whole design (one byte buffer shared by all
// n envelopes of a broadcast).
#include "perf/arena.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/envelope.h"
#include "sim/process.h"

namespace treeaa::perf {
namespace {

TEST(Payload, FreshHandleOwnsItsBytes) {
  const Payload p(Bytes{1, 2, 3});
  EXPECT_EQ(p.use_count(), 1u);
  EXPECT_FALSE(p.shared());
  EXPECT_EQ(p.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p[1], 2);

  const Payload empty;
  EXPECT_EQ(empty.use_count(), 0u);
  EXPECT_TRUE(empty.empty());
}

TEST(Payload, CopySharesWithoutCopyingBytes) {
  const Payload a(Bytes{7, 8});
  const Payload b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_EQ(b.use_count(), 2u);
  EXPECT_TRUE(a.shared());
  EXPECT_EQ(a.data(), b.data()) << "copies must alias the same buffer";
  EXPECT_EQ(a, b);
}

TEST(Payload, MutableBytesDetachesSharedHandles) {
  Payload a(Bytes{1, 1, 1});
  Payload b = a;
  b.mutable_bytes()[0] = 9;
  // The write went to b's own copy; a is untouched and both are unshared.
  EXPECT_EQ(a.bytes(), (Bytes{1, 1, 1}));
  EXPECT_EQ(b.bytes(), (Bytes{9, 1, 1}));
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_EQ(b.use_count(), 1u);

  // An already-unique handle mutates in place (no detach).
  const std::uint8_t* before = b.data();
  b.mutable_bytes()[1] = 9;
  EXPECT_EQ(b.data(), before);
}

TEST(Payload, TakeMovesWhenUniqueCopiesWhenShared) {
  Payload unique(Bytes{5, 6});
  EXPECT_EQ(unique.take(), (Bytes{5, 6}));
  EXPECT_EQ(unique.use_count(), 0u) << "take() empties the handle";

  Payload a(Bytes{3, 4});
  Payload b = a;
  EXPECT_EQ(b.take(), (Bytes{3, 4}));
  EXPECT_EQ(a.bytes(), (Bytes{3, 4})) << "shared take() must not steal";
  EXPECT_EQ(a.use_count(), 1u);
}

TEST(PayloadPool, RecyclesControlBlocks) {
  PayloadPool pool;
  const Bytes src{1, 2, 3, 4};
  Payload p = pool.copy_of(src);
  EXPECT_EQ(p.bytes(), src);
  EXPECT_EQ(pool.pooled(), 0u);

  p.release(&pool);
  EXPECT_EQ(p.use_count(), 0u);
  EXPECT_EQ(pool.pooled(), 1u);

  // The next payload reuses the pooled node instead of allocating.
  Payload q = pool.adopt(Bytes{9});
  EXPECT_EQ(pool.pooled(), 0u);
  EXPECT_EQ(q.bytes(), Bytes{9});
  EXPECT_EQ(q.use_count(), 1u);
  q.release(&pool);
  EXPECT_EQ(pool.pooled(), 1u);
}

TEST(PayloadPool, SharedReleaseFreesOnlyTheLastReference) {
  PayloadPool pool;
  Payload a = pool.copy_of(Bytes{2, 2});
  Payload b = a;
  a.release(&pool);
  EXPECT_EQ(pool.pooled(), 0u) << "b still holds the rep";
  EXPECT_EQ(b.bytes(), (Bytes{2, 2}));
  b.release(&pool);
  EXPECT_EQ(pool.pooled(), 1u);
}

// The tentpole property: a Mailer broadcast interns its payload once and
// every envelope shares it — n handles, one buffer.
TEST(BroadcastInterning, AllEnvelopesShareOnePayload) {
  PayloadPool pool;
  std::vector<sim::Envelope> sink;
  constexpr std::size_t kParties = 6;
  sim::Mailer mailer(0, kParties, sink, 3, &pool);
  mailer.broadcast(Bytes{42, 43, 44});

  ASSERT_EQ(sink.size(), kParties);
  const std::uint8_t* buffer = sink[0].payload.data();
  for (const sim::Envelope& e : sink) {
    EXPECT_EQ(e.payload.use_count(), kParties);
    EXPECT_EQ(e.payload.data(), buffer) << "broadcast must not copy bytes";
    EXPECT_EQ(e.payload, (Bytes{42, 43, 44}));
  }

  // Consuming the envelopes returns exactly one control block to the pool.
  for (sim::Envelope& e : sink) e.payload.release(&pool);
  EXPECT_EQ(pool.pooled(), 1u);
}

// A corrupting consumer (the net fault layer, adversarial replay) detaches
// before writing, so the mutation never leaks to the other recipients.
TEST(BroadcastInterning, CorruptionDetachesInsteadOfAliasing) {
  PayloadPool pool;
  std::vector<sim::Envelope> sink;
  sim::Mailer mailer(1, 4, sink, 0, &pool);
  mailer.broadcast(Bytes{10, 20});
  ASSERT_EQ(sink.size(), 4u);

  sink[2].payload.mutable_bytes()[0] ^= 0xFF;  // corrupt-link bit flip
  EXPECT_EQ(sink[2].payload, (Bytes{0xF5, 20}));
  for (const std::size_t i : {0u, 1u, 3u}) {
    EXPECT_EQ(sink[i].payload, (Bytes{10, 20}))
        << "recipient " << i << " saw the corruption through sharing";
  }
}

}  // namespace
}  // namespace treeaa::perf
