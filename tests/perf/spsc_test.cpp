// SpscRing: the lock-free lane-handoff primitive. Covers capacity
// rounding, full/empty boundaries, FIFO order across many wraparounds,
// move-only elements, real producer/consumer contention, and the
// WorkerPool streaming-drain integration on a forced multi-worker pool
// (the shape the TSan CI job forces via TREEAA_FORCE_WORKERS even on a
// single-core host).
#include "perf/spsc.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "perf/parallel.h"

namespace treeaa::perf {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwoMinusOne) {
  EXPECT_EQ(SpscRing<int>(2).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 7u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 7u);
  EXPECT_EQ(SpscRing<int>(9).capacity(), 15u);
}

TEST(SpscRing, FullAndEmptyBoundaries) {
  SpscRing<int> ring(4);  // rounds to 4 slots: capacity 3
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty_consumer());
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  EXPECT_FALSE(ring.try_push(99));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty_consumer());
}

TEST(SpscRing, FifoOrderAcrossManyWraparounds) {
  SpscRing<int> ring(8);  // capacity 7, so 1000 items wrap well over 100x
  int next_pop = 0;
  for (int i = 0; i < 1000; ++i) {
    ring.push(int(i));
    // Drain only every third iteration so the cursors cross the wrap
    // boundary at varying occupancy.
    if (i % 3 != 0) continue;
    int out = -1;
    while (ring.try_pop(out)) EXPECT_EQ(out, next_pop++);
  }
  int out = -1;
  while (ring.try_pop(out)) EXPECT_EQ(out, next_pop++);
  EXPECT_EQ(next_pop, 1000);
}

TEST(SpscRing, MoveOnlyElements) {
  SpscRing<std::unique_ptr<int>> ring(4);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, ProducerConsumerContention) {
  // A dedicated producer thread against the test thread consuming: the
  // tiny ring forces constant full/empty transitions, so the cached-cursor
  // refresh paths and the blocking push all run under real contention.
  constexpr int kItems = 200000;
  SpscRing<int> ring(64);
  std::thread producer([&ring] {
    for (int i = 0; i < kItems; ++i) ring.push(int(i));
  });
  int expected = 0;
  while (expected < kItems) {
    int out = -1;
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      cpu_relax();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty_consumer());
}

TEST(SpscRing, StreamingDrainWithForcedMultiWorkerPool) {
  // The engine's streaming handoff in miniature: a 4-lane pool on 4 real
  // workers (forced, so the test is meaningful on any host), tiny rings so
  // producers block on full rings and depend on the concurrent drain for
  // progress, and an in-lane-order drain cursor. The drained sequence must
  // equal the serial iteration order exactly.
  WorkerPool pool(4, 4);
  ASSERT_EQ(pool.workers(), 4u);
  constexpr std::size_t kCount = 4096;
  const std::size_t lanes = pool.lanes();
  std::vector<std::unique_ptr<SpscRing<std::size_t>>> rings(lanes);
  std::vector<std::vector<std::size_t>> staging(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    if (!pool.lane_on_caller(lane)) {
      rings[lane] = std::make_unique<SpscRing<std::size_t>>(16);
    }
  }
  std::vector<std::size_t> drained;
  std::size_t cursor = 0;
  const auto drain = [&] {
    while (cursor < lanes) {
      if (rings[cursor] == nullptr) {
        if (!pool.lane_done(cursor)) return;
        drained.insert(drained.end(), staging[cursor].begin(),
                       staging[cursor].end());
      } else {
        // Load done before draining: anything pushed before the flag went
        // up is visible, so an empty ring with done set is truly finished.
        const bool done = pool.lane_done(cursor);
        std::size_t v = 0;
        while (rings[cursor]->try_pop(v)) drained.push_back(v);
        if (!done) return;
      }
      ++cursor;
    }
  };
  pool.run(
      kCount,
      [&](std::size_t lane, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          if (rings[lane] != nullptr) {
            rings[lane]->push(std::size_t{i});
          } else {
            staging[lane].push_back(i);
          }
        }
      },
      drain);
  ASSERT_EQ(drained.size(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(drained[i], i) << "at " << i;
  }
}

}  // namespace
}  // namespace treeaa::perf
