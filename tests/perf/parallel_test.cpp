// WorkerPool: static chunking, exact index coverage on every
// (count, lanes, workers) shape, deterministic exception choice, the lease
// cache, and a dispatch stress loop that exercises the sleep/wake handshake
// with real threads (the TSAN job's main subject).
#include "perf/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace treeaa::perf {
namespace {

TEST(WorkerPool, ResolveLanesAndChunkSize) {
  EXPECT_EQ(WorkerPool::resolve_lanes(1), 1u);
  EXPECT_EQ(WorkerPool::resolve_lanes(7), 7u);
  EXPECT_GE(WorkerPool::resolve_lanes(0), 1u);  // hardware concurrency

  EXPECT_EQ(WorkerPool::chunk_size(10, 2), 5u);
  EXPECT_EQ(WorkerPool::chunk_size(10, 3), 4u);
  EXPECT_EQ(WorkerPool::chunk_size(1, 8), 1u);
  EXPECT_EQ(WorkerPool::chunk_size(0, 4), 0u);
}

TEST(WorkerPool, WorkersNeverExceedLanes) {
  WorkerPool pool(4, 16);
  EXPECT_EQ(pool.lanes(), 4u);
  EXPECT_LE(pool.workers(), 4u);
}

// Every index in [0, count) is visited exactly once, by the lane its
// static chunk dictates — for single-worker (inline) and multi-worker
// execution alike. This is the partition the engine's byte-identical
// merge order is built on.
TEST(WorkerPool, CoversEveryIndexExactlyOnceWithStaticChunks) {
  for (const std::size_t lanes : {2u, 3u, 8u}) {
    for (const std::size_t workers : {1u, 2u, 3u}) {
      WorkerPool pool(lanes, workers);
      for (const std::size_t count : {0u, 1u, 5u, 8u, 17u}) {
        const std::size_t chunk = WorkerPool::chunk_size(count, lanes);
        std::vector<std::vector<std::size_t>> per_lane(lanes);
        pool.run(count, [&](std::size_t lane, std::size_t begin,
                            std::size_t end) {
          for (std::size_t i = begin; i < end; ++i)
            per_lane[lane].push_back(i);
        });
        std::vector<int> seen(count, 0);
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          for (const std::size_t i : per_lane[lane]) {
            ASSERT_LT(i, count);
            ++seen[i];
            EXPECT_EQ(i / chunk, lane)
                << "index " << i << " ran on the wrong lane";
          }
        }
        for (std::size_t i = 0; i < count; ++i) {
          EXPECT_EQ(seen[i], 1) << "index " << i << " count=" << count
                                << " lanes=" << lanes
                                << " workers=" << workers;
        }
      }
    }
  }
}

TEST(WorkerPool, RethrowsLowestLaneException) {
  WorkerPool pool(4, 2);
  try {
    pool.run(4, [](std::size_t lane, std::size_t, std::size_t) {
      if (lane == 1) throw std::runtime_error("lane one");
      if (lane == 3) throw std::runtime_error("lane three");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "lane one");
  }
  // The pool survives a throwing dispatch.
  std::atomic<int> hits{0};
  pool.run(4, [&](std::size_t, std::size_t begin, std::size_t end) {
    hits.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(hits.load(), 4);
}

TEST(WorkerPool, LeaseIsEmptyForSerialLaneCounts) {
  const WorkerPool::Lease lease = WorkerPool::lease(1);
  EXPECT_EQ(lease.get(), nullptr);
  EXPECT_FALSE(lease);
}

TEST(WorkerPool, LeaseCacheReusesPools) {
  WorkerPool* first = nullptr;
  {
    const WorkerPool::Lease lease = WorkerPool::lease(3);
    ASSERT_NE(lease.get(), nullptr);
    EXPECT_EQ(lease.get()->lanes(), 3u);
    first = lease.get();
  }
  const WorkerPool::Lease again = WorkerPool::lease(3);
  EXPECT_EQ(again.get(), first) << "returned pool should be recycled";
}

TEST(WorkerPool, LaneOnCallerMapsLanesCongruentToZero) {
  WorkerPool pool(6, 3);
  if (pool.workers() == 3) {
    // Lanes 0 and 3 run on the dispatching thread; the rest on workers.
    EXPECT_TRUE(pool.lane_on_caller(0));
    EXPECT_FALSE(pool.lane_on_caller(1));
    EXPECT_FALSE(pool.lane_on_caller(2));
    EXPECT_TRUE(pool.lane_on_caller(3));
  }
  // A single-worker pool runs every lane on the caller.
  WorkerPool serial(4, 1);
  for (std::size_t lane = 0; lane < 4; ++lane) {
    EXPECT_TRUE(serial.lane_on_caller(lane));
  }
}

TEST(WorkerPool, LaneDoneIsSetForEveryLaneAfterRun) {
  WorkerPool pool(4, 2);
  pool.run(4, [](std::size_t, std::size_t, std::size_t) {});
  for (std::size_t lane = 0; lane < 4; ++lane) {
    EXPECT_TRUE(pool.lane_done(lane)) << "lane " << lane;
  }
  // Flags reset at the next dispatch and set again, even when lanes throw.
  try {
    pool.run(4, [](std::size_t lane, std::size_t, std::size_t) {
      if (lane == 2) throw std::runtime_error("boom");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  for (std::size_t lane = 0; lane < 4; ++lane) {
    EXPECT_TRUE(pool.lane_done(lane)) << "lane " << lane;
  }
}

TEST(WorkerPool, StreamingRunCallsIdleHookAndFinishesAfterAllLanes) {
  WorkerPool pool(4, 2);
  std::size_t idle_calls = 0;
  bool all_done_at_last_idle = false;
  pool.run(
      8, [](std::size_t, std::size_t, std::size_t) {},
      [&] {
        ++idle_calls;
        all_done_at_last_idle = pool.lane_done(0) && pool.lane_done(1) &&
                                pool.lane_done(2) && pool.lane_done(3);
      });
  // Called at least once more after every lane reported done, so a
  // streaming drain always sees the final state.
  EXPECT_GE(idle_calls, 1u);
  EXPECT_TRUE(all_done_at_last_idle);
}

TEST(WorkerPool, StreamingRunStillRethrowsAfterIdleHook) {
  WorkerPool pool(2, 2);
  bool idled = false;
  try {
    pool.run(
        2,
        [](std::size_t lane, std::size_t, std::size_t) {
          if (lane == 1) throw std::runtime_error("streaming lane");
        },
        [&] { idled = true; });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "streaming lane");
  }
  EXPECT_TRUE(idled);
}

TEST(WorkerPool, LeaseCacheMatchesPinConfiguration) {
  // Flipping --pin-threads must not hand back a pool built under the other
  // setting: a mis-pinned pool would silently ignore the flag.
  const bool before = WorkerPool::pin_threads();
  WorkerPool* unpinned = nullptr;
  {
    const WorkerPool::Lease lease = WorkerPool::lease(5);
    ASSERT_NE(lease.get(), nullptr);
    EXPECT_FALSE(lease.get()->pinned());
    unpinned = lease.get();
  }
  WorkerPool::set_pin_threads(true);
  {
    const WorkerPool::Lease lease = WorkerPool::lease(5);
    ASSERT_NE(lease.get(), nullptr);
    EXPECT_TRUE(lease.get()->pinned());
    EXPECT_NE(lease.get(), unpinned);
  }
  WorkerPool::set_pin_threads(before);
}

// Back-to-back dispatches through the generation/done handshake, with
// forced multi-threading so a single-core host still exercises the
// concurrent path (this is the test the CI TSAN job leans on).
TEST(WorkerPool, RepeatedDispatchStress) {
  WorkerPool pool(4, 3);
  std::vector<std::size_t> lane_sums(4, 0);
  constexpr std::size_t kDispatches = 2000;
  for (std::size_t d = 0; d < kDispatches; ++d) {
    pool.run(8, [&](std::size_t lane, std::size_t begin, std::size_t end) {
      lane_sums[lane] += end - begin;
    });
  }
  for (const std::size_t sum : lane_sums) {
    EXPECT_EQ(sum, 2 * kDispatches);  // 8 indices over 4 lanes
  }
}

}  // namespace
}  // namespace treeaa::perf
