// WorkerPool: static chunking, exact index coverage on every
// (count, lanes, workers) shape, deterministic exception choice, the lease
// cache, and a dispatch stress loop that exercises the sleep/wake handshake
// with real threads (the TSAN job's main subject).
#include "perf/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace treeaa::perf {
namespace {

TEST(WorkerPool, ResolveLanesAndChunkSize) {
  EXPECT_EQ(WorkerPool::resolve_lanes(1), 1u);
  EXPECT_EQ(WorkerPool::resolve_lanes(7), 7u);
  EXPECT_GE(WorkerPool::resolve_lanes(0), 1u);  // hardware concurrency

  EXPECT_EQ(WorkerPool::chunk_size(10, 2), 5u);
  EXPECT_EQ(WorkerPool::chunk_size(10, 3), 4u);
  EXPECT_EQ(WorkerPool::chunk_size(1, 8), 1u);
  EXPECT_EQ(WorkerPool::chunk_size(0, 4), 0u);
}

TEST(WorkerPool, WorkersNeverExceedLanes) {
  WorkerPool pool(4, 16);
  EXPECT_EQ(pool.lanes(), 4u);
  EXPECT_LE(pool.workers(), 4u);
}

// Every index in [0, count) is visited exactly once, by the lane its
// static chunk dictates — for single-worker (inline) and multi-worker
// execution alike. This is the partition the engine's byte-identical
// merge order is built on.
TEST(WorkerPool, CoversEveryIndexExactlyOnceWithStaticChunks) {
  for (const std::size_t lanes : {2u, 3u, 8u}) {
    for (const std::size_t workers : {1u, 2u, 3u}) {
      WorkerPool pool(lanes, workers);
      for (const std::size_t count : {0u, 1u, 5u, 8u, 17u}) {
        const std::size_t chunk = WorkerPool::chunk_size(count, lanes);
        std::vector<std::vector<std::size_t>> per_lane(lanes);
        pool.run(count, [&](std::size_t lane, std::size_t begin,
                            std::size_t end) {
          for (std::size_t i = begin; i < end; ++i)
            per_lane[lane].push_back(i);
        });
        std::vector<int> seen(count, 0);
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          for (const std::size_t i : per_lane[lane]) {
            ASSERT_LT(i, count);
            ++seen[i];
            EXPECT_EQ(i / chunk, lane)
                << "index " << i << " ran on the wrong lane";
          }
        }
        for (std::size_t i = 0; i < count; ++i) {
          EXPECT_EQ(seen[i], 1) << "index " << i << " count=" << count
                                << " lanes=" << lanes
                                << " workers=" << workers;
        }
      }
    }
  }
}

TEST(WorkerPool, RethrowsLowestLaneException) {
  WorkerPool pool(4, 2);
  try {
    pool.run(4, [](std::size_t lane, std::size_t, std::size_t) {
      if (lane == 1) throw std::runtime_error("lane one");
      if (lane == 3) throw std::runtime_error("lane three");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "lane one");
  }
  // The pool survives a throwing dispatch.
  std::atomic<int> hits{0};
  pool.run(4, [&](std::size_t, std::size_t begin, std::size_t end) {
    hits.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(hits.load(), 4);
}

TEST(WorkerPool, LeaseIsEmptyForSerialLaneCounts) {
  const WorkerPool::Lease lease = WorkerPool::lease(1);
  EXPECT_EQ(lease.get(), nullptr);
  EXPECT_FALSE(lease);
}

TEST(WorkerPool, LeaseCacheReusesPools) {
  WorkerPool* first = nullptr;
  {
    const WorkerPool::Lease lease = WorkerPool::lease(3);
    ASSERT_NE(lease.get(), nullptr);
    EXPECT_EQ(lease.get()->lanes(), 3u);
    first = lease.get();
  }
  const WorkerPool::Lease again = WorkerPool::lease(3);
  EXPECT_EQ(again.get(), first) << "returned pool should be recycled";
}

// Back-to-back dispatches through the generation/done handshake, with
// forced multi-threading so a single-core host still exercises the
// concurrent path (this is the test the CI TSAN job leans on).
TEST(WorkerPool, RepeatedDispatchStress) {
  WorkerPool pool(4, 3);
  std::vector<std::size_t> lane_sums(4, 0);
  constexpr std::size_t kDispatches = 2000;
  for (std::size_t d = 0; d < kDispatches; ++d) {
    pool.run(8, [&](std::size_t lane, std::size_t begin, std::size_t end) {
      lane_sums[lane] += end - begin;
    });
  }
  for (const std::size_t sum : lane_sums) {
    EXPECT_EQ(sum, 2 * kDispatches);  // 8 indices over 4 lanes
  }
}

}  // namespace
}  // namespace treeaa::perf
