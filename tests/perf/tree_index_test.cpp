// Property tests pinning perf::TreeIndex against the naive LabeledTree
// walks. TreeIndex is consulted on the protocols' hot paths (projection,
// path indexing) and by check_agreement, so every query must agree exactly
// with the O(log n) / pointer-climbing reference implementation — across
// every generator family plus the chainy trees, exhaustively on small
// trees and on random samples on larger ones.
#include "perf/tree_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "trees/generators.h"
#include "trees/paths.h"

namespace treeaa {
namespace {

struct Sample {
  std::string name;
  LabeledTree tree;
};

std::vector<Sample> sample_trees() {
  std::vector<Sample> samples;
  samples.push_back({"path_1", make_path(1)});
  samples.push_back({"path_2", make_path(2)});
  samples.push_back({"figure3", make_figure3_tree()});
  Rng rng(20260805);
  for (const TreeFamily family : all_tree_families()) {
    for (const std::size_t size : {5u, 23u, 80u}) {
      samples.push_back({std::string(tree_family_name(family)) + "_" +
                             std::to_string(size),
                         make_family_tree(family, size, rng)});
    }
  }
  for (const std::size_t size : {7u, 41u, 120u}) {
    samples.push_back({"chainy_" + std::to_string(size),
                       make_random_chainy_tree(size, rng, 0.9)});
  }
  return samples;
}

/// Vertices to query: everything on small trees, a random sample otherwise.
std::vector<VertexId> query_vertices(const LabeledTree& tree, Rng& rng) {
  std::vector<VertexId> vs;
  if (tree.n() <= 16) {
    for (VertexId v = 0; v < tree.n(); ++v) vs.push_back(v);
  } else {
    for (int i = 0; i < 12; ++i) {
      vs.push_back(static_cast<VertexId>(rng.index(tree.n())));
    }
  }
  return vs;
}

TEST(TreeIndexTest, PairQueriesMatchNaiveWalks) {
  Rng rng(1);
  for (const Sample& s : sample_trees()) {
    SCOPED_TRACE(s.name);
    const perf::TreeIndex index(s.tree);
    EXPECT_EQ(index.n(), s.tree.n());
    EXPECT_EQ(index.root(), s.tree.root());
    const auto vs = query_vertices(s.tree, rng);
    for (const VertexId u : vs) {
      EXPECT_EQ(index.depth(u), s.tree.depth(u));
      for (const VertexId v : vs) {
        EXPECT_EQ(index.lca(u, v), s.tree.lca(u, v));
        EXPECT_EQ(index.distance(u, v), s.tree.distance(u, v));
        EXPECT_EQ(index.is_ancestor(u, v), s.tree.is_ancestor(u, v));
      }
    }
  }
}

TEST(TreeIndexTest, MedianAndProjectionMatchNaiveWalks) {
  Rng rng(2);
  for (const Sample& s : sample_trees()) {
    SCOPED_TRACE(s.name);
    const perf::TreeIndex index(s.tree);
    const auto vs = query_vertices(s.tree, rng);
    for (const VertexId a : vs) {
      for (const VertexId b : vs) {
        for (const VertexId c : vs) {
          const VertexId want = s.tree.median(a, b, c);
          EXPECT_EQ(index.median(a, b, c), want);
          // proj_P(v) with P = P(a, b) is the same median.
          EXPECT_EQ(index.project_onto_path(a, b, c), want);
        }
      }
    }
  }
}

TEST(TreeIndexTest, RootPathsMatchNaiveWalks) {
  Rng rng(3);
  for (const Sample& s : sample_trees()) {
    SCOPED_TRACE(s.name);
    const perf::TreeIndex index(s.tree);
    for (const VertexId tip : query_vertices(s.tree, rng)) {
      const auto got = index.root_path(tip);
      const auto want = s.tree.path(s.tree.root(), tip);
      EXPECT_EQ(got, want);
      // The paper's 1-based v_1 .. v_k indexing along any root-anchored
      // path: index_on_root_path(v) must equal v's position in the walk.
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(index.index_on_root_path(got[i]), i + 1);
      }
    }
  }
}

TEST(TreeIndexTest, HullQueriesMatchNaiveWalks) {
  Rng rng(4);
  for (const Sample& s : sample_trees()) {
    SCOPED_TRACE(s.name);
    const perf::TreeIndex index(s.tree);
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<VertexId> members;
      const std::size_t k = 1 + rng.index(5);
      for (std::size_t i = 0; i < k; ++i) {
        members.push_back(static_cast<VertexId>(rng.index(s.tree.n())));
      }
      for (const VertexId w : query_vertices(s.tree, rng)) {
        EXPECT_EQ(index.in_hull(members, w), in_hull(s.tree, members, w));
      }
      // Cross-check against the materialized hull as well.
      const auto hull = convex_hull(s.tree, members);
      for (const VertexId w : hull) {
        EXPECT_TRUE(index.in_hull(members, w));
      }
    }
  }
}

TEST(TreeIndexTest, MaxPairwiseDistanceMatchesNaiveWalks) {
  Rng rng(5);
  for (const Sample& s : sample_trees()) {
    SCOPED_TRACE(s.name);
    const perf::TreeIndex index(s.tree);
    const auto a = query_vertices(s.tree, rng);
    const auto b = query_vertices(s.tree, rng);
    std::uint32_t want = 0;
    for (const VertexId u : a) {
      for (const VertexId v : b) {
        want = std::max(want, s.tree.distance(u, v));
      }
    }
    EXPECT_EQ(index.max_pairwise_distance(a, b), want);
  }
}

}  // namespace
}  // namespace treeaa
