// perf/simd.h: the active dispatch must agree with the scalar reference
// implementations bit for bit on every primitive — f64 little-endian
// store/load, bulk copies at every size and alignment, finiteness scans
// with specials at every position, and the LEB128 varint codec including
// its rejection of truncated and non-canonical encodings.
#include "perf/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/bytes.h"

namespace treeaa::perf::simd {
namespace {

const std::vector<double>& special_values() {
  static const std::vector<double> values = {
      0.0,
      -0.0,
      1.0,
      -1.0,
      3.141592653589793,
      1e308,
      -1e308,
      5e-324,  // smallest denormal
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::signaling_NaN(),
  };
  return values;
}

TEST(Simd, DispatchNameIsSet) {
  EXPECT_NE(kDispatch, nullptr);
  EXPECT_GT(std::strlen(kDispatch), 0u);
}

TEST(Simd, StoreLoadF64MatchesScalarBitForBit) {
  for (const double v : special_values()) {
    std::uint8_t active[8], reference[8];
    store_f64_le(active, v);
    scalar::store_f64_le(reference, v);
    EXPECT_EQ(std::memcmp(active, reference, 8), 0);

    const double back = load_f64_le(active);
    const double scalar_back = scalar::load_f64_le(reference);
    std::uint64_t bits_back = 0, bits_scalar = 0;
    std::memcpy(&bits_back, &back, 8);
    std::memcpy(&bits_scalar, &scalar_back, 8);
    EXPECT_EQ(bits_back, bits_scalar);
  }
  // The format golden: IEEE-754 1.0, little-endian.
  std::uint8_t one[8];
  store_f64_le(one, 1.0);
  const std::uint8_t expected[8] = {0, 0, 0, 0, 0, 0, 0xF0, 0x3F};
  EXPECT_EQ(std::memcmp(one, expected, 8), 0);
}

TEST(Simd, CopyBytesMatchesMemcpyAtEverySizeAndOffset) {
  std::vector<std::uint8_t> src(300);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  // Sizes straddle every vector-width boundary (16/32) and the tails;
  // offsets shift the source across alignments.
  for (std::size_t len = 0; len <= 130; ++len) {
    for (const std::size_t offset : {std::size_t{0}, std::size_t{1},
                                     std::size_t{7}, std::size_t{15}}) {
      std::vector<std::uint8_t> dst(len + 2, 0xEE);
      std::vector<std::uint8_t> expect(len + 2, 0xEE);
      copy_bytes(dst.data() + 1, src.data() + offset, len);
      if (len > 0) std::memcpy(expect.data() + 1, src.data() + offset, len);
      EXPECT_EQ(dst, expect) << "len=" << len << " offset=" << offset;
    }
  }
}

TEST(Simd, AllFiniteMatchesScalarWithSpecialsAtEveryPosition) {
  for (std::size_t len = 0; len <= 33; ++len) {
    std::vector<double> values(len, 0.5);
    EXPECT_EQ(all_finite_f64(values.data(), len),
              scalar::all_finite_f64(values.data(), len));
    EXPECT_TRUE(all_finite_f64(values.data(), len));
    for (std::size_t pos = 0; pos < len; ++pos) {
      for (const double bad : {std::numeric_limits<double>::infinity(),
                               -std::numeric_limits<double>::infinity(),
                               std::numeric_limits<double>::quiet_NaN()}) {
        values[pos] = bad;
        EXPECT_FALSE(all_finite_f64(values.data(), len))
            << "len=" << len << " pos=" << pos;
        EXPECT_EQ(all_finite_f64(values.data(), len),
                  scalar::all_finite_f64(values.data(), len));
        values[pos] = 0.5;
      }
      // Denormals and huge-but-finite values must pass.
      values[pos] = 5e-324;
      EXPECT_TRUE(all_finite_f64(values.data(), len));
      values[pos] = std::numeric_limits<double>::max();
      EXPECT_TRUE(all_finite_f64(values.data(), len));
      values[pos] = 0.5;
    }
  }
}

TEST(Simd, VarintRoundTripsBoundaryValues) {
  const std::vector<std::uint64_t> values = {
      0,       1,         127,        128,       16383,
      16384,   2097151,   2097152,    268435455, 268435456,
      1u << 31, std::uint64_t{1} << 42, std::uint64_t{1} << 63,
      std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : values) {
    std::uint8_t buf[10];
    std::uint8_t* end = write_varint(buf, v);
    EXPECT_EQ(static_cast<std::size_t>(end - buf), varint_len(v));
    std::uint64_t back = 0;
    const std::uint8_t* p = buf;
    ASSERT_TRUE(read_varint(p, end, back)) << v;
    EXPECT_EQ(back, v);
    EXPECT_EQ(p, end);
  }
}

TEST(Simd, VarintRejectsTruncatedAndNonCanonical) {
  // Truncated: every strict prefix of a multi-byte encoding fails.
  std::uint8_t buf[10];
  const std::uint8_t* enc_end =
      write_varint(buf, std::numeric_limits<std::uint64_t>::max());
  for (const std::uint8_t* cut = buf; cut != enc_end; ++cut) {
    std::uint64_t out = 0;
    const std::uint8_t* p = buf;
    EXPECT_FALSE(read_varint(p, cut, out));
  }
  // Over-long: ten continuation bytes never terminate within the limit.
  std::uint8_t overlong[11];
  std::memset(overlong, 0x80, sizeof(overlong));
  std::uint64_t out = 0;
  const std::uint8_t* p = overlong;
  EXPECT_FALSE(read_varint(p, overlong + sizeof(overlong), out));
  // Non-canonical final byte: the tenth byte may only contribute one bit.
  std::uint8_t high[10];
  std::memset(high, 0x80, 9);
  high[9] = 0x02;  // shifts a bit past position 63
  p = high;
  EXPECT_FALSE(read_varint(p, high + 10, out));
  // The canonical max encoding (final byte 0x01) is accepted.
  std::uint8_t max_enc[10];
  std::memset(max_enc, 0xFF, 9);
  max_enc[9] = 0x01;
  p = max_enc;
  ASSERT_TRUE(read_varint(p, max_enc + 10, out));
  EXPECT_EQ(out, std::numeric_limits<std::uint64_t>::max());
}

}  // namespace
}  // namespace treeaa::perf::simd
