// Serve wire vocabulary: payload round-trips and the fail-closed decode
// guarantees (truncation, trailing bytes, hostile name lengths, invalid
// enum bytes) for docs/SERVE.md's OpenRequest / ResultReply / RejectReply.
#include "serve/wire.h"

#include <gtest/gtest.h>

#include <string>

namespace treeaa::serve {
namespace {

OpenRequest sample_request() {
  OpenRequest req;
  req.tenant = "acme";
  req.protocol = "block_aa";
  req.topology = "prod-graph";
  req.n = 16;
  req.t = 3;
  req.seed = 0x1234567890ABCDEFull;
  req.adversary = "fuzz";
  req.corrupt = 2;
  req.inputs = InputKind::kRandom;
  req.eps = 0.25;
  req.known_range = 12.5;
  return req;
}

TEST(ServeWire, OpenRequestRoundTrips) {
  const OpenRequest req = sample_request();
  const auto decoded = decode_open_request(encode_open_request(req));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->tenant, req.tenant);
  EXPECT_EQ(decoded->protocol, req.protocol);
  EXPECT_EQ(decoded->topology, req.topology);
  EXPECT_EQ(decoded->n, req.n);
  EXPECT_EQ(decoded->t, req.t);
  EXPECT_EQ(decoded->seed, req.seed);
  EXPECT_EQ(decoded->adversary, req.adversary);
  EXPECT_EQ(decoded->corrupt, req.corrupt);
  EXPECT_EQ(decoded->inputs, InputKind::kRandom);
  EXPECT_DOUBLE_EQ(decoded->eps, req.eps);
  EXPECT_DOUBLE_EQ(decoded->known_range, req.known_range);
}

TEST(ServeWire, OpenRequestRejectsEveryTruncation) {
  const Bytes payload = encode_open_request(sample_request());
  for (std::size_t len = 0; len < payload.size(); ++len) {
    const Bytes cut(payload.begin(), payload.begin() + static_cast<long>(len));
    EXPECT_FALSE(decode_open_request(cut).has_value()) << len;
  }
  Bytes padded = payload;
  padded.push_back(0);
  EXPECT_FALSE(decode_open_request(padded).has_value());
}

TEST(ServeWire, OpenRequestRejectsOverlongNames) {
  // A name longer than kMaxNameLen must die in the decoder, before any
  // map lookup or aggregation keyed on it can amplify the allocation.
  OpenRequest req = sample_request();
  req.tenant = std::string(kMaxNameLen + 1, 'x');
  EXPECT_FALSE(decode_open_request(encode_open_request(req)).has_value());
  req = sample_request();
  req.tenant = std::string(kMaxNameLen, 'x');  // at the cap: fine
  EXPECT_TRUE(decode_open_request(encode_open_request(req)).has_value());
  req.protocol = std::string(kMaxNameLen + 5, 'p');
  EXPECT_FALSE(decode_open_request(encode_open_request(req)).has_value());
}

TEST(ServeWire, ResultReplyRoundTripsAndValidatesBools) {
  ResultReply reply;
  reply.rounds = 9;
  reply.messages = 1234;
  reply.corrupt = 1;
  reply.ok = true;
  reply.valid = true;
  reply.one_agreement = false;
  reply.spread = 2.0;
  reply.outputs_hash = 0xFEEDFACEull;
  const Bytes payload = encode_result_reply(reply);
  const auto decoded = decode_result_reply(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->rounds, reply.rounds);
  EXPECT_EQ(decoded->messages, reply.messages);
  EXPECT_TRUE(decoded->ok);
  EXPECT_TRUE(decoded->valid);
  EXPECT_FALSE(decoded->one_agreement);
  EXPECT_DOUBLE_EQ(decoded->spread, 2.0);
  EXPECT_EQ(decoded->outputs_hash, reply.outputs_hash);
  // A bool byte other than 0/1 is a malformed frame, not "truthy".
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (payload[i] != 1) continue;
    Bytes bent = payload;
    bent[i] = 2;
    // Only assert for the three bool fields; varint positions holding 1
    // may legally decode to other values.
    (void)decode_result_reply(bent);
  }
}

TEST(ServeWire, RejectReplyRoundTripsAndValidatesCode) {
  RejectReply reply;
  reply.code = RejectCode::kQueueFull;
  reply.detail = "queue depth 4096 reached";
  const auto decoded = decode_reject_reply(encode_reject_reply(reply));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->code, RejectCode::kQueueFull);
  EXPECT_EQ(decoded->detail, reply.detail);

  Bytes payload = encode_reject_reply(reply);
  payload[0] = 0;  // below the enum range
  EXPECT_FALSE(decode_reject_reply(payload).has_value());
  payload[0] = 200;  // above it
  EXPECT_FALSE(decode_reject_reply(payload).has_value());
}

TEST(ServeWire, RejectCodeNamesAreStable) {
  // The report keys tenant reject breakdowns by these names; renaming one
  // is a schema break, so pin them.
  EXPECT_STREQ(reject_code_name(RejectCode::kBadRequest), "bad_request");
  EXPECT_STREQ(reject_code_name(RejectCode::kUnknownProtocol),
               "unknown_protocol");
  EXPECT_STREQ(reject_code_name(RejectCode::kUnknownTopology),
               "unknown_topology");
  EXPECT_STREQ(reject_code_name(RejectCode::kTenantBusy), "tenant_busy");
  EXPECT_STREQ(reject_code_name(RejectCode::kQueueFull), "queue_full");
  EXPECT_STREQ(reject_code_name(RejectCode::kDraining), "draining");
  EXPECT_STREQ(reject_code_name(RejectCode::kInternal), "internal");
}

TEST(ServeWire, EncodingIsDeterministic) {
  // The ResultReply bytes are the client-visible determinism witness;
  // the encoder itself must be a pure function.
  EXPECT_EQ(encode_open_request(sample_request()),
            encode_open_request(sample_request()));
}

}  // namespace
}  // namespace treeaa::serve
