// Hosted-instance execution: admission validation's typed rejects, and
// run_instance as a pure function of (catalog, request) — correct across
// every protocol family and byte-deterministic on repeat.
#include "serve/instance.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "graphs/generators.h"
#include "trees/generators.h"

namespace treeaa::serve {
namespace {

Catalog test_catalog() {
  Catalog catalog;
  Rng tree_rng(7);
  catalog.add_tree("spider", make_family_tree(TreeFamily::kSpider, 20, tree_rng));
  Rng path_rng(1);
  catalog.add_tree("line", make_family_tree(TreeFamily::kPath, 9, path_rng));
  Rng graph_rng(11);
  catalog.add_graph("blocks", graphs::make_family_graph(
                                  graphs::GraphFamily::kCactus, 20, graph_rng));
  return catalog;
}

OpenRequest base_request(const char* protocol) {
  OpenRequest req;
  req.tenant = "test";
  req.protocol = protocol;
  req.topology = "spider";
  req.n = 8;
  req.t = 2;
  req.seed = 5;
  req.adversary = "none";
  return req;
}

TEST(ValidateRequest, AdmitsEveryServedFamily) {
  const Catalog catalog = test_catalog();
  for (const char* protocol :
       {"tree_aa", "iterated_tree_aa", "paths_finder", "async_tree_aa"}) {
    EXPECT_FALSE(
        validate_request(catalog, base_request(protocol), nullptr).has_value())
        << protocol;
  }
  OpenRequest req = base_request("block_aa");
  req.topology = "blocks";
  EXPECT_FALSE(validate_request(catalog, req, nullptr).has_value());
  req = base_request("real_aa");
  req.topology = "ignored-by-real-protocols";
  EXPECT_FALSE(validate_request(catalog, req, nullptr).has_value());
  req = base_request("path_aa");
  req.topology = "line";
  EXPECT_FALSE(validate_request(catalog, req, nullptr).has_value());
}

TEST(ValidateRequest, TypedRejects) {
  const Catalog catalog = test_catalog();
  std::string detail;

  OpenRequest req = base_request("no_such");
  EXPECT_EQ(validate_request(catalog, req, &detail),
            RejectCode::kUnknownProtocol);

  req = base_request("tree_aa");
  req.topology = "nope";
  EXPECT_EQ(validate_request(catalog, req, &detail),
            RejectCode::kUnknownTopology);

  req = base_request("block_aa");
  req.topology = "spider";  // a tree name is not a graph name
  EXPECT_EQ(validate_request(catalog, req, &detail),
            RejectCode::kUnknownTopology);

  req = base_request("tree_aa");
  req.t = 3;  // n = 8 <= 3t
  EXPECT_EQ(validate_request(catalog, req, &detail), RejectCode::kBadRequest);

  req = base_request("tree_aa");
  req.corrupt = 3;  // > t
  EXPECT_EQ(validate_request(catalog, req, &detail), RejectCode::kBadRequest);

  req = base_request("tree_aa");
  req.n = kMaxParties + 1;
  EXPECT_EQ(validate_request(catalog, req, &detail), RejectCode::kBadRequest);

  req = base_request("tree_aa");
  req.adversary = "split";  // registry kind, but not a served one
  EXPECT_EQ(validate_request(catalog, req, &detail), RejectCode::kBadRequest);

  req = base_request("async_tree_aa");
  req.adversary = "fuzz";
  EXPECT_EQ(validate_request(catalog, req, &detail), RejectCode::kBadRequest);

  req = base_request("path_aa");  // spider is not a path
  EXPECT_EQ(validate_request(catalog, req, &detail), RejectCode::kBadRequest);

  req = base_request("real_aa");
  req.eps = 0.0;
  EXPECT_EQ(validate_request(catalog, req, &detail), RejectCode::kBadRequest);
}

TEST(RunInstance, EveryFamilyCompletesAndPassesItsCheck) {
  const Catalog catalog = test_catalog();
  for (const char* protocol : {"tree_aa", "iterated_tree_aa", "paths_finder",
                               "real_aa", "iterated_real_aa",
                               "async_tree_aa"}) {
    OpenRequest req = base_request(protocol);
    ASSERT_FALSE(validate_request(catalog, req, nullptr).has_value())
        << protocol;
    const InstanceResult result = run_instance(catalog, req);
    EXPECT_TRUE(result.error.empty()) << protocol << ": " << result.error;
    EXPECT_TRUE(result.reply.ok) << protocol;
    if (std::string(protocol) != "async_tree_aa") {
      EXPECT_GT(result.reply.rounds, 0u) << protocol;  // async has no rounds
    }
    EXPECT_GT(result.reply.messages, 0u) << protocol;
  }
  OpenRequest req = base_request("block_aa");
  req.topology = "blocks";
  const InstanceResult result = run_instance(catalog, req);
  EXPECT_TRUE(result.error.empty()) << result.error;
  EXPECT_TRUE(result.reply.ok);
}

TEST(RunInstance, LedgerCheckPassesWhereItApplies) {
  // With the ledger enabled, every sync-AA family must replay clean against
  // the paper's round budget; paths_finder (phase-1 only) and the async
  // model (no rounds) are exempt and must report zero rather than a
  // spurious budget violation.
  const Catalog catalog = test_catalog();
  for (const char* protocol : {"tree_aa", "iterated_tree_aa", "real_aa",
                               "iterated_real_aa", "paths_finder",
                               "async_tree_aa"}) {
    const InstanceResult result =
        run_instance(catalog, base_request(protocol), /*ledger=*/true);
    EXPECT_TRUE(result.error.empty()) << protocol << ": " << result.error;
    EXPECT_TRUE(result.reply.ok) << protocol;
    EXPECT_EQ(result.ledger_violations, 0u) << protocol;
  }
  OpenRequest req = base_request("block_aa");
  req.topology = "blocks";
  const InstanceResult result = run_instance(catalog, req, /*ledger=*/true);
  EXPECT_TRUE(result.reply.ok);
  EXPECT_EQ(result.ledger_violations, 0u);
}

TEST(RunInstance, LedgerDoesNotChangeTheReplyBytes) {
  // The ledger observes via obs hooks only — switching it on must never
  // perturb the deterministic outcome a client sees.
  const Catalog catalog = test_catalog();
  OpenRequest req = base_request("tree_aa");
  req.adversary = "fuzz";
  req.corrupt = 2;
  req.inputs = InputKind::kRandom;
  EXPECT_EQ(encode_result_reply(run_instance(catalog, req, false).reply),
            encode_result_reply(run_instance(catalog, req, true).reply));
}

TEST(RunInstance, SurvivesAdversariesWithinBudget) {
  const Catalog catalog = test_catalog();
  for (const char* adversary : {"silent", "fuzz"}) {
    OpenRequest req = base_request("tree_aa");
    req.adversary = adversary;
    req.corrupt = 2;
    req.inputs = InputKind::kRandom;
    const InstanceResult result = run_instance(catalog, req);
    EXPECT_TRUE(result.error.empty()) << adversary << ": " << result.error;
    EXPECT_TRUE(result.reply.ok) << adversary;
    EXPECT_EQ(result.reply.corrupt, 2u) << adversary;
  }
}

TEST(RunInstance, IsAPureFunctionOfTheRequest) {
  const Catalog catalog = test_catalog();
  OpenRequest req = base_request("tree_aa");
  req.adversary = "fuzz";
  req.corrupt = 1;
  req.inputs = InputKind::kRandom;
  const Bytes first = encode_result_reply(run_instance(catalog, req).reply);
  const Bytes second = encode_result_reply(run_instance(catalog, req).reply);
  EXPECT_EQ(first, second);

  // A different seed draws different inputs/victims — the witness hash
  // must move (with overwhelming probability), proving the seed is
  // actually threaded through.
  OpenRequest other = req;
  other.seed = req.seed + 1;
  EXPECT_NE(encode_result_reply(run_instance(catalog, other).reply), first);
}

TEST(RunInstance, SpreadInputsAreDeterministicWithoutSeedDependence) {
  // Spread inputs don't consume randomness: two different seeds with no
  // adversary must produce identical outputs (the RNG streams are forked
  // but never drawn from).
  const Catalog catalog = test_catalog();
  OpenRequest req = base_request("tree_aa");
  OpenRequest other = req;
  other.seed = 999;
  EXPECT_EQ(run_instance(catalog, req).reply.outputs_hash,
            run_instance(catalog, other).reply.outputs_hash);
}

}  // namespace
}  // namespace treeaa::serve
