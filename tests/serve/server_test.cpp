// The serve event loop end to end over real AF_UNIX / TCP sockets:
// multiplexed sessions complete correctly, admission control sheds with
// typed rejects, protocol errors fail closed, and the canonical report is
// byte-identical across worker thread counts.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "graphs/generators.h"
#include "net/socket.h"
#include "serve/client.h"
#include "trees/generators.h"

namespace treeaa::serve {
namespace {

Catalog test_catalog() {
  Catalog catalog;
  Rng tree_rng(3);
  catalog.add_tree("main", make_family_tree(TreeFamily::kRandom, 25, tree_rng));
  Rng graph_rng(4);
  catalog.add_graph("main", graphs::make_family_graph(
                                graphs::GraphFamily::kCactus, 18, graph_rng));
  return catalog;
}

OpenRequest request(const char* tenant, const char* protocol,
                    std::uint64_t seed) {
  OpenRequest req;
  req.tenant = tenant;
  req.protocol = protocol;
  req.topology = "main";
  req.n = 8;
  req.t = 2;
  req.seed = seed;
  req.adversary = "none";
  return req;
}

/// Pumps the client until every in-flight session resolved (bounded by
/// ~10 s so a deadlock fails the test instead of hanging it).
std::vector<Client::Event> drain_client(Client& client) {
  std::vector<Client::Event> events;
  for (int i = 0; i < 1000 && client.inflight() > 0 && !client.broken(); ++i) {
    for (auto& event : client.wait(10)) events.push_back(std::move(event));
  }
  return events;
}

TEST(Server, MultiplexesConcurrentInstancesOverUnix) {
  const std::string sock = "server_ut_mux.sock";
  ServerOptions opts;
  opts.unix_path = sock;
  opts.threads = 2;
  Server server(test_catalog(), std::move(opts));
  std::thread loop([&server] { server.run(); });

  Client client = Client::connect_unix(sock);
  const char* protocols[] = {"tree_aa", "real_aa", "block_aa",
                             "iterated_tree_aa", "async_tree_aa"};
  constexpr std::size_t kSessions = 20;
  for (std::size_t i = 0; i < kSessions; ++i) {
    client.open(request(i % 2 == 0 ? "alpha" : "beta",
                        protocols[i % std::size(protocols)], 100 + i));
  }
  const auto events = drain_client(client);
  server.request_drain();
  loop.join();

  ASSERT_EQ(events.size(), kSessions);
  for (const auto& event : events) {
    ASSERT_EQ(event.kind, Client::Event::Kind::kResult);
    EXPECT_TRUE(event.result.ok) << "session " << event.session_id;
  }
  EXPECT_TRUE(server.clean());
  const ServeReport& report = server.report();
  EXPECT_EQ(report.total(&TenantStats::started), kSessions);
  EXPECT_EQ(report.total(&TenantStats::completed), kSessions);
  EXPECT_EQ(report.total(&TenantStats::rejected), 0u);
  EXPECT_EQ(report.accepted_connections, 1u);
  ASSERT_EQ(report.table.tenants.count("alpha"), 1u);
  EXPECT_EQ(report.table.tenants.at("alpha").completed, kSessions / 2);
}

TEST(Server, WorksOverLoopbackTcp) {
  ServerOptions opts;
  opts.tcp_port = 0;  // ephemeral
  Server server(test_catalog(), std::move(opts));
  ASSERT_NE(server.tcp_port(), 0);
  std::thread loop([&server] { server.run(); });

  Client client = Client::connect_tcp(server.tcp_port());
  client.open(request("tcp", "tree_aa", 1));
  const auto events = drain_client(client);
  server.request_drain();
  loop.join();

  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, Client::Event::Kind::kResult);
  EXPECT_TRUE(events[0].result.ok);
}

TEST(Server, ValidationRejectsAreTypedAndKeepTheConnectionAlive) {
  const std::string sock = "server_ut_rej.sock";
  ServerOptions opts;
  opts.unix_path = sock;
  Server server(test_catalog(), std::move(opts));
  std::thread loop([&server] { server.run(); });

  Client client = Client::connect_unix(sock);
  OpenRequest bad = request("r", "no_such_protocol", 1);
  client.open(bad);
  OpenRequest good = request("r", "tree_aa", 2);
  client.open(good);
  const auto events = drain_client(client);
  server.request_drain();
  loop.join();

  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(client.broken());
  int rejects = 0, results = 0;
  for (const auto& event : events) {
    if (event.kind == Client::Event::Kind::kReject) {
      ++rejects;
      EXPECT_EQ(event.reject.code, RejectCode::kUnknownProtocol);
    } else if (event.kind == Client::Event::Kind::kResult) {
      ++results;
      EXPECT_TRUE(event.result.ok);
    }
  }
  EXPECT_EQ(rejects, 1);
  EXPECT_EQ(results, 1);
  EXPECT_EQ(server.report().total(&TenantStats::rejected), 1u);
  EXPECT_EQ(
      server.report().table.tenants.at("r").rejects.at("unknown_protocol"),
      1u);
  EXPECT_TRUE(server.clean());  // rejects are not failures
}

TEST(Server, PerTenantInflightCapShedsTenantBusy) {
  const std::string sock = "server_ut_busy.sock";
  ServerOptions opts;
  opts.unix_path = sock;
  opts.max_inflight_per_tenant = 3;
  Server server(test_catalog(), std::move(opts));
  std::thread loop([&server] { server.run(); });

  // Pipelining all opens into one write makes the shed deterministic: the
  // loop reads the whole burst in one tick, before any instance completes,
  // so exactly cap-many are admitted and the rest bounce.
  Client client = Client::connect_unix(sock);
  constexpr int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) {
    client.open(request("hog", "tree_aa", static_cast<std::uint64_t>(i)));
  }
  const auto events = drain_client(client);
  server.request_drain();
  loop.join();

  ASSERT_EQ(events.size(), kBurst);
  int busy = 0, done = 0;
  for (const auto& event : events) {
    if (event.kind == Client::Event::Kind::kReject) {
      EXPECT_EQ(event.reject.code, RejectCode::kTenantBusy);
      ++busy;
    } else if (event.kind == Client::Event::Kind::kResult) {
      EXPECT_TRUE(event.result.ok);
      ++done;
    }
  }
  EXPECT_EQ(done, 3);
  EXPECT_EQ(busy, kBurst - 3);
  EXPECT_EQ(server.report().table.tenants.at("hog").rejects.at("tenant_busy"),
            static_cast<std::uint64_t>(kBurst - 3));
}

TEST(Server, GlobalQueueDepthShedsQueueFull) {
  const std::string sock = "server_ut_qf.sock";
  ServerOptions opts;
  opts.unix_path = sock;
  opts.max_queue = 2;
  Server server(test_catalog(), std::move(opts));
  std::thread loop([&server] { server.run(); });

  Client client = Client::connect_unix(sock);
  constexpr int kBurst = 6;
  for (int i = 0; i < kBurst; ++i) {
    // Distinct tenants so the per-tenant cap never fires first.
    client.open(request(("t" + std::to_string(i)).c_str(), "tree_aa",
                        static_cast<std::uint64_t>(i)));
  }
  const auto events = drain_client(client);
  server.request_drain();
  loop.join();

  ASSERT_EQ(events.size(), kBurst);
  int full = 0, done = 0;
  for (const auto& event : events) {
    if (event.kind == Client::Event::Kind::kReject) {
      EXPECT_EQ(event.reject.code, RejectCode::kQueueFull);
      ++full;
    } else {
      ++done;
    }
  }
  EXPECT_EQ(done, 2);
  EXPECT_EQ(full, kBurst - 2);
}

TEST(Server, GarbageFramesFailClosed) {
  const std::string sock = "server_ut_garbage.sock";
  ServerOptions opts;
  opts.unix_path = sock;
  Server server(test_catalog(), std::move(opts));
  std::thread loop([&server] { server.run(); });

  {
    // A well-framed body that is not a session frame (wrong version byte).
    net::Socket raw = net::connect_unix(sock);
    Bytes body{0x7F, 0x01, 0x01, 0x00};
    Bytes wire;
    const auto len = static_cast<std::uint32_t>(body.size());
    wire.push_back(static_cast<std::uint8_t>(len & 0xFF));
    wire.push_back(static_cast<std::uint8_t>((len >> 8) & 0xFF));
    wire.push_back(static_cast<std::uint8_t>((len >> 16) & 0xFF));
    wire.push_back(static_cast<std::uint8_t>((len >> 24) & 0xFF));
    wire.insert(wire.end(), body.begin(), body.end());
    std::size_t written = 0;
    while (written < wire.size()) {
      written += raw.write_some(wire.data() + written, wire.size() - written);
    }
    // The server must close on us without replying.
    std::uint8_t buf[64];
    for (int i = 0; i < 1000; ++i) {
      const auto r = raw.read_some(buf, sizeof buf);
      ASSERT_EQ(r.n, 0u) << "server replied to a garbage frame";
      if (r.closed) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  // The daemon survives and still serves well-behaved clients.
  Client client = Client::connect_unix(sock);
  client.open(request("after", "tree_aa", 9));
  const auto events = drain_client(client);
  server.request_drain();
  loop.join();

  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].result.ok);
  EXPECT_EQ(server.report().protocol_errors, 1u);
  EXPECT_TRUE(server.clean());
}

std::string run_workload_report(std::size_t threads) {
  const std::string sock =
      "server_ut_det_" + std::to_string(threads) + ".sock";
  ServerOptions opts;
  opts.unix_path = sock;
  opts.threads = threads;
  Server server(test_catalog(), std::move(opts));
  std::thread loop([&server] { server.run(); });

  Client client = Client::connect_unix(sock);
  const char* protocols[] = {"tree_aa", "real_aa", "block_aa", "paths_finder"};
  for (std::size_t i = 0; i < 16; ++i) {
    OpenRequest req = request(i % 3 == 0 ? "big" : "small",
                              protocols[i % std::size(protocols)], 40 + i);
    if (i % 2 == 1) req.inputs = InputKind::kRandom;
    client.open(req);
  }
  const auto events = drain_client(client);
  server.request_drain();
  loop.join();
  EXPECT_EQ(events.size(), 16u);
  EXPECT_TRUE(server.clean());
  return server.report().to_json(/*include_timings=*/false);
}

TEST(Server, CanonicalReportIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = run_workload_report(1);
  const std::string threaded = run_workload_report(4);
  EXPECT_EQ(serial, threaded);
  // And it carries the schema plus a timing-free body.
  EXPECT_NE(serial.find("treeaa.serve_report/1"), std::string::npos);
  EXPECT_EQ(serial.find("latency"), std::string::npos);
}

}  // namespace
}  // namespace treeaa::serve
