// Generic adversary strategies: silent, crash (with partial broadcast),
// fuzz, puppets and composition.
#include "sim/strategies.h"

#include <gtest/gtest.h>

#include <map>

#include "sim/engine.h"

namespace treeaa::sim {
namespace {

class RecordingProcess final : public Process {
 public:
  void on_round_begin(Round r, Mailer& out) override {
    ByteWriter w;
    w.varint(r);
    out.broadcast(w.bytes());
  }
  void on_round_end(Round r, std::span<const Envelope> inbox) override {
    for (const Envelope& e : inbox) received_[r].push_back(e);
  }
  std::map<Round, std::vector<Envelope>> received_;
};

Engine make_engine(std::size_t n, std::size_t t) {
  Engine e(n, t);
  for (PartyId p = 0; p < n; ++p) {
    e.set_process(p, std::make_unique<RecordingProcess>());
  }
  return e;
}

std::size_t messages_from(const RecordingProcess& proc, Round r,
                          PartyId from) {
  std::size_t count = 0;
  const auto it = proc.received_.find(r);
  if (it == proc.received_.end()) return 0;
  for (const Envelope& e : it->second) {
    if (e.from == from) ++count;
  }
  return count;
}

TEST(SilentAdversary, VictimsNeverSpeak) {
  Engine e = make_engine(4, 1);
  e.set_adversary(std::make_unique<SilentAdversary>(std::vector<PartyId>{2}));
  e.run(3);
  const auto& proc = dynamic_cast<RecordingProcess&>(e.process(0));
  for (Round r = 1; r <= 3; ++r) {
    EXPECT_EQ(messages_from(proc, r, 2), 0u);
    EXPECT_EQ(messages_from(proc, r, 1), 1u);
  }
}

TEST(CrashAdversary, HonestUntilCrashRound) {
  Engine e = make_engine(4, 1);
  e.set_adversary(std::make_unique<CrashAdversary>(
      std::vector<CrashAdversary::Crash>{{2, 3, 0.0}}));
  e.run(4);
  const auto& proc = dynamic_cast<RecordingProcess&>(e.process(0));
  EXPECT_EQ(messages_from(proc, 1, 2), 1u);
  EXPECT_EQ(messages_from(proc, 2, 2), 1u);
  EXPECT_EQ(messages_from(proc, 3, 2), 0u);  // crash round, nothing kept
  EXPECT_EQ(messages_from(proc, 4, 2), 0u);
}

TEST(CrashAdversary, PartialBroadcastOnCrash) {
  Engine e = make_engine(4, 2);
  e.set_adversary(std::make_unique<CrashAdversary>(
      std::vector<CrashAdversary::Crash>{{1, 2, 0.5}}));
  e.run(2);
  // Half of the 4 queued messages (to parties 0..3 in order) survive: the
  // prefix {to 0, to 1}. The copy to party 1 goes to the crasher itself,
  // so exactly one observable message lands at an honest party.
  std::size_t delivered = 0;
  for (PartyId p = 0; p < 4; ++p) {
    if (e.is_corrupt(p)) continue;
    delivered +=
        messages_from(dynamic_cast<RecordingProcess&>(e.process(p)), 2, 1);
  }
  EXPECT_EQ(delivered, 1u);
}

TEST(FuzzAdversary, DeliversGarbageFromVictimsOnly) {
  Engine e = make_engine(5, 2);
  e.set_adversary(std::make_unique<FuzzAdversary>(
      std::vector<PartyId>{0, 3}, /*seed=*/11, /*messages_per_round=*/6));
  e.run(4);
  std::size_t garbage = 0;
  for (PartyId p = 0; p < 5; ++p) {
    if (e.is_corrupt(p)) continue;
    const auto& proc = dynamic_cast<RecordingProcess&>(e.process(p));
    for (const auto& [r, inbox] : proc.received_) {
      for (const Envelope& env : inbox) {
        if (env.from == 0 || env.from == 3) ++garbage;
      }
    }
  }
  EXPECT_GT(garbage, 0u);
  EXPECT_EQ(e.stats().total_messages(),
            e.stats().honest_messages() + 6 * 4);
}

/// A puppet that broadcasts a recognizable tag.
class TaggedProcess final : public Process {
 public:
  explicit TaggedProcess(std::uint8_t tag) : tag_(tag) {}
  void on_round_begin(Round, Mailer& out) override {
    out.broadcast(Bytes{tag_});
  }
  void on_round_end(Round r, std::span<const Envelope> inbox) override {
    rounds_seen_ = r;
    last_inbox_size_ = inbox.size();
  }
  std::uint8_t tag_;
  Round rounds_seen_ = 0;
  std::size_t last_inbox_size_ = 0;
};

TEST(PuppetAdversary, PuppetsSendAndReceiveLikeHonestParties) {
  Engine e = make_engine(4, 1);
  std::vector<PuppetAdversary::Puppet> puppets;
  auto proc = std::make_unique<TaggedProcess>(0xAB);
  auto* proc_ptr = proc.get();
  puppets.push_back({2, std::move(proc), nullptr});
  e.set_adversary(std::make_unique<PuppetAdversary>(std::move(puppets)));
  e.run(3);
  // The puppet's messages reach honest parties...
  const auto& honest = dynamic_cast<RecordingProcess&>(e.process(0));
  EXPECT_EQ(messages_from(honest, 1, 2), 1u);
  EXPECT_EQ(honest.received_.at(1)[2].payload, Bytes{0xAB});
  // ...and the puppet received the full round traffic itself.
  EXPECT_EQ(proc_ptr->rounds_seen_, 3u);
  EXPECT_EQ(proc_ptr->last_inbox_size_, 4u);
}

TEST(ComposedAdversary, RunsAllParts) {
  Engine e = make_engine(5, 2);
  std::vector<std::unique_ptr<Adversary>> parts;
  parts.push_back(
      std::make_unique<SilentAdversary>(std::vector<PartyId>{0}));
  parts.push_back(std::make_unique<FuzzAdversary>(std::vector<PartyId>{4},
                                                  /*seed=*/3, 2));
  e.set_adversary(std::make_unique<ComposedAdversary>(std::move(parts)));
  e.run(2);
  EXPECT_TRUE(e.is_corrupt(0));
  EXPECT_TRUE(e.is_corrupt(4));
  const auto& proc = dynamic_cast<RecordingProcess&>(e.process(1));
  EXPECT_EQ(messages_from(proc, 1, 0), 0u);  // silent
}

TEST(Helpers, FirstAndRandomParties) {
  EXPECT_EQ(first_parties(3), (std::vector<PartyId>{0, 1, 2}));
  Rng rng(17);
  const auto picked = random_parties(10, 4, rng);
  EXPECT_EQ(picked.size(), 4u);
  EXPECT_TRUE(std::is_sorted(picked.begin(), picked.end()));
  EXPECT_EQ(std::adjacent_find(picked.begin(), picked.end()), picked.end());
  for (const PartyId p : picked) EXPECT_LT(p, 10u);
  EXPECT_THROW((void)random_parties(3, 4, rng), std::invalid_argument);
}

}  // namespace
}  // namespace treeaa::sim
