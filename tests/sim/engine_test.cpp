// Synchronous engine semantics: delivery, ordering, authentication, rushing
// adversary, adaptive corruption, traffic accounting, determinism.
#include "sim/engine.h"

#include <gtest/gtest.h>

#include <map>

#include "sim/strategies.h"

namespace treeaa::sim {
namespace {

/// Broadcasts [self, round] every round and records everything received.
class ChatterProcess final : public Process {
 public:
  void on_round_begin(Round r, Mailer& out) override {
    ByteWriter w;
    w.varint(out.self());
    w.varint(r);
    out.broadcast(w.bytes());
    ++sends_;
  }

  void on_round_end(Round r, std::span<const Envelope> inbox) override {
    for (const Envelope& e : inbox) received_[r].push_back(e);
  }

  std::map<Round, std::vector<Envelope>> received_;
  int sends_ = 0;
};

/// Sends one direct message to a fixed peer in round 1 only.
class OneShotProcess final : public Process {
 public:
  explicit OneShotProcess(PartyId to) : to_(to) {}
  void on_round_begin(Round r, Mailer& out) override {
    if (r == 1) out.send(to_, Bytes{42});
  }
  void on_round_end(Round, std::span<const Envelope> inbox) override {
    for (const Envelope& e : inbox) got_.push_back(e);
  }
  PartyId to_;
  std::vector<Envelope> got_;
};

Engine make_engine(std::size_t n, std::size_t t) {
  Engine e(n, t);
  for (PartyId p = 0; p < n; ++p) {
    e.set_process(p, std::make_unique<ChatterProcess>());
  }
  return e;
}

TEST(Engine, BroadcastsReachEveryoneIncludingSelf) {
  Engine e = make_engine(4, 1);
  e.run(1);
  for (PartyId p = 0; p < 4; ++p) {
    auto& proc = dynamic_cast<ChatterProcess&>(e.process(p));
    ASSERT_EQ(proc.received_[1].size(), 4u);
  }
}

TEST(Engine, InboxSortedBySender) {
  Engine e = make_engine(5, 1);
  e.run(2);
  auto& proc = dynamic_cast<ChatterProcess&>(e.process(3));
  for (const auto& [round, inbox] : proc.received_) {
    for (std::size_t i = 0; i + 1 < inbox.size(); ++i) {
      EXPECT_LE(inbox[i].from, inbox[i + 1].from);
    }
  }
}

TEST(Engine, FromFieldIsAuthentic) {
  Engine e = make_engine(3, 1);
  e.run(1);
  auto& proc = dynamic_cast<ChatterProcess&>(e.process(0));
  for (const Envelope& env : proc.received_[1]) {
    ByteReader r(env.payload);
    EXPECT_EQ(r.varint(), env.from);  // sender wrote its own id; they match
  }
}

TEST(Engine, DirectMessageOnlyReachesRecipient) {
  Engine e(3, 1);
  e.set_process(0, std::make_unique<OneShotProcess>(2));
  e.set_process(1, std::make_unique<OneShotProcess>(2));
  e.set_process(2, std::make_unique<OneShotProcess>(0));
  e.run(1);
  EXPECT_EQ(dynamic_cast<OneShotProcess&>(e.process(2)).got_.size(), 2u);
  EXPECT_EQ(dynamic_cast<OneShotProcess&>(e.process(0)).got_.size(), 1u);
  EXPECT_EQ(dynamic_cast<OneShotProcess&>(e.process(1)).got_.size(), 0u);
}

TEST(Engine, MessagesDoNotCrossRounds) {
  Engine e(2, 1);
  e.set_process(0, std::make_unique<OneShotProcess>(1));
  e.set_process(1, std::make_unique<OneShotProcess>(0));
  e.run(3);
  const auto& got = dynamic_cast<OneShotProcess&>(e.process(1)).got_;
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].round, 1u);
}

TEST(Engine, RunsInPhases) {
  Engine e = make_engine(3, 1);
  e.run(2);
  EXPECT_EQ(e.rounds_elapsed(), 2u);
  e.run(3);
  EXPECT_EQ(e.rounds_elapsed(), 5u);
  auto& proc = dynamic_cast<ChatterProcess&>(e.process(0));
  EXPECT_EQ(proc.sends_, 5);
}

TEST(Engine, RejectsInvalidConfigs) {
  EXPECT_THROW(Engine(0, 0), std::invalid_argument);
  EXPECT_THROW(Engine(3, 3), std::invalid_argument);  // t must be < n
}

TEST(Engine, RequiresProcessesBeforeRun) {
  Engine e(2, 1);
  e.set_process(0, std::make_unique<ChatterProcess>());
  EXPECT_THROW(e.run(1), std::invalid_argument);
}

TEST(Engine, TrafficAccounting) {
  Engine e = make_engine(4, 1);
  e.run(2);
  const auto& stats = e.stats();
  ASSERT_EQ(stats.per_round.size(), 2u);
  // 4 parties broadcasting to 4 = 16 messages per round.
  EXPECT_EQ(stats.per_round[0].honest_messages, 16u);
  EXPECT_EQ(stats.total_messages(), 32u);
  EXPECT_GT(stats.honest_bytes(), 0u);
  EXPECT_EQ(stats.per_round[0].adversary_messages, 0u);
}

// --- Adversary interactions --------------------------------------------------

/// Corrupts party 0 at init and injects a forged-looking message each round.
class InjectingAdversary final : public Adversary {
 public:
  void init(RoundView& view) override { view.corrupt(0); }
  void act(RoundView& view) override {
    view.send(0, 1, Bytes{9, 9});
    saw_messages_ = view.queued().size();
  }
  std::size_t saw_messages_ = 0;
};

TEST(Engine, CorruptPartyProcessIsNeverInvoked) {
  Engine e = make_engine(4, 1);
  e.set_adversary(std::make_unique<InjectingAdversary>());
  e.run(2);
  auto& corrupt_proc = dynamic_cast<ChatterProcess&>(e.process(0));
  EXPECT_EQ(corrupt_proc.sends_, 0);
  EXPECT_TRUE(corrupt_proc.received_.empty());
  EXPECT_TRUE(e.is_corrupt(0));
  EXPECT_EQ(e.honest(), (std::vector<PartyId>{1, 2, 3}));
}

TEST(Engine, RushingAdversarySeesHonestTrafficBeforeDelivery) {
  Engine e = make_engine(4, 1);
  auto adv = std::make_unique<InjectingAdversary>();
  auto* adv_ptr = adv.get();
  e.set_adversary(std::move(adv));
  e.run(1);
  // 3 honest parties broadcast to 4 each = 12 messages, plus our own
  // injection appended as we observed.
  EXPECT_EQ(adv_ptr->saw_messages_, 13u);
}

TEST(Engine, InjectedMessagesAreDelivered) {
  Engine e = make_engine(3, 1);
  e.set_adversary(std::make_unique<InjectingAdversary>());
  e.run(1);
  auto& proc = dynamic_cast<ChatterProcess&>(e.process(1));
  ASSERT_EQ(proc.received_[1].size(), 3u);  // 2 honest + 1 injected
  bool found = false;
  for (const Envelope& env : proc.received_[1]) {
    if (env.from == 0 && env.payload == Bytes{9, 9}) found = true;
  }
  EXPECT_TRUE(found);
}

/// Tries to send from an honest party — must be rejected.
class ForgingAdversary final : public Adversary {
 public:
  void act(RoundView& view) override { view.send(1, 2, Bytes{1}); }
};

TEST(Engine, AdversaryCannotForgeHonestSender) {
  Engine e = make_engine(3, 1);
  e.set_adversary(std::make_unique<ForgingAdversary>());
  EXPECT_THROW(e.run(1), std::invalid_argument);
}

/// Adaptively corrupts party 2 in round 2 and replays only one retracted
/// message.
class MidRunCorruptor final : public Adversary {
 public:
  void act(RoundView& view) override {
    if (view.round() != 2) return;
    auto retracted = view.corrupt(2);
    retracted_count_ = retracted.size();
    if (!retracted.empty()) {
      view.send(2, retracted[0].to, retracted[0].payload.take());
    }
  }
  std::size_t retracted_count_ = 0;
};

TEST(Engine, AdaptiveCorruptionRetractsQueuedMessages) {
  Engine e = make_engine(4, 1);
  auto adv = std::make_unique<MidRunCorruptor>();
  auto* adv_ptr = adv.get();
  e.set_adversary(std::move(adv));
  e.run(3);
  EXPECT_EQ(adv_ptr->retracted_count_, 4u);  // the whole broadcast
  // Party 2 behaved honestly in round 1, was silenced from round 2 on
  // except the single replayed message.
  auto& proc = dynamic_cast<ChatterProcess&>(e.process(1));
  EXPECT_EQ(proc.received_[1].size(), 4u);
  std::size_t from2_r2 = 0;
  for (const Envelope& env : proc.received_[2]) {
    if (env.from == 2) ++from2_r2;
  }
  const auto& proc0 = dynamic_cast<ChatterProcess&>(e.process(0));
  std::size_t from2_r2_p0 = 0;
  for (const Envelope& env : proc0.received_.at(2)) {
    if (env.from == 2) ++from2_r2_p0;
  }
  // Exactly one of the four retracted messages was re-delivered in total.
  EXPECT_EQ(from2_r2 + from2_r2_p0, 1u);
  // From round 3 on, party 2 is fully silent.
  for (const Envelope& env : proc.received_[3]) EXPECT_NE(env.from, 2u);
}

/// Exceeds its corruption budget.
class GreedyCorruptor final : public Adversary {
 public:
  void init(RoundView& view) override {
    view.corrupt(0);
    view.corrupt(1);  // budget is 1 — must throw
  }
  void act(RoundView&) override {}
};

TEST(Engine, CorruptionBudgetEnforced) {
  Engine e = make_engine(4, 1);
  e.set_adversary(std::make_unique<GreedyCorruptor>());
  EXPECT_THROW(e.run(1), std::invalid_argument);
}

/// Injects an oversized payload — the memory-bomb guard must trip.
class BombAdversary final : public Adversary {
 public:
  void init(RoundView& view) override { view.corrupt(0); }
  void act(RoundView& view) override {
    view.send(0, 1, Bytes((1u << 24) + 1));
  }
};

TEST(Engine, OversizedPayloadRejected) {
  Engine e = make_engine(3, 1);
  e.set_adversary(std::make_unique<BombAdversary>());
  EXPECT_THROW(e.run(1), std::invalid_argument);
}

/// Tries to send during init (round 0) — forbidden, nothing is deliverable.
class EagerAdversary final : public Adversary {
 public:
  void init(RoundView& view) override {
    view.corrupt(0);
    view.send(0, 1, Bytes{1});
  }
  void act(RoundView&) override {}
};

TEST(Engine, AdversaryCannotSendDuringInit) {
  Engine e = make_engine(3, 1);
  e.set_adversary(std::make_unique<EagerAdversary>());
  EXPECT_THROW(e.run(1), InternalError);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto transcript = [](std::uint64_t seed) {
    Engine e(4, 1);
    for (PartyId p = 0; p < 4; ++p) {
      e.set_process(p, std::make_unique<ChatterProcess>());
    }
    e.set_adversary(std::make_unique<FuzzAdversary>(
        std::vector<PartyId>{0}, seed, 4, 16));
    e.run(5);
    std::vector<Bytes> all;
    for (PartyId p = 1; p < 4; ++p) {
      auto& proc = dynamic_cast<ChatterProcess&>(e.process(p));
      for (auto& [r, inbox] : proc.received_) {
        for (auto& env : inbox) all.push_back(env.payload);
      }
    }
    return all;
  };
  EXPECT_EQ(transcript(7), transcript(7));
  EXPECT_NE(transcript(7), transcript(8));
}

}  // namespace
}  // namespace treeaa::sim
