// Omission faults (Fekete's weaker fault class): parties that run the
// protocol correctly but lose a fraction of their outgoing messages. The
// Byzantine-tolerant protocols must shrug this off — an omission-faulty
// party is strictly weaker than a Byzantine one.
#include <gtest/gtest.h>

#include "core/api.h"
#include "core/tree_aa.h"
#include "harness/runner.h"
#include "sim/strategies.h"
#include "trees/euler.h"
#include "trees/generators.h"

namespace treeaa::sim {
namespace {

TEST(OmissionFaults, RandomDropFilterIsDeterministicPerSeed) {
  auto f1 = PuppetAdversary::random_drops(0.5, 9);
  auto f2 = PuppetAdversary::random_drops(0.5, 9);
  Envelope e;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(f1(e), f2(e));
  }
  auto none = PuppetAdversary::random_drops(0.0, 1);
  auto all = PuppetAdversary::random_drops(1.0, 1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(none(e));
    EXPECT_FALSE(all(e));
  }
  EXPECT_THROW(PuppetAdversary::random_drops(1.5, 1),
               std::invalid_argument);
}

TEST(OmissionFaults, RealAAToleratesLossySenders) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::size_t n = 10, t = 3;
    realaa::Config cfg;
    cfg.n = n;
    cfg.t = t;
    cfg.eps = 1.0;
    cfg.known_range = 1000.0;
    const auto inputs = harness::spread_real_inputs(n, 0.0, 1000.0);

    std::vector<PuppetAdversary::Puppet> puppets;
    for (const PartyId victim : {7u, 8u, 9u}) {
      puppets.push_back(
          {victim,
           std::make_unique<realaa::RealAAProcess>(cfg, victim,
                                                   inputs[victim]),
           PuppetAdversary::random_drops(0.4, seed * 100 + victim)});
    }
    auto run = harness::run_real_aa(
        cfg, inputs, std::make_unique<PuppetAdversary>(std::move(puppets)));

    // Validity/agreement against the honest (non-lossy) parties' inputs.
    double lo = 1e300, hi = -1e300;
    for (PartyId p = 0; p < 7; ++p) {
      lo = std::min(lo, inputs[p]);
      hi = std::max(hi, inputs[p]);
    }
    for (const double v : run.honest_outputs()) {
      EXPECT_GE(v, lo - 1e-12);
      EXPECT_LE(v, hi + 1e-12);
    }
    EXPECT_LE(run.output_range(), cfg.eps) << "seed " << seed;
  }
}

TEST(OmissionFaults, TreeAAToleratesLossySenders) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    const auto tree = make_random_tree(60, rng);
    const EulerList euler(tree);
    const std::size_t n = 7, t = 2;
    const auto inputs = harness::random_vertex_inputs(tree, n, rng);

    std::vector<PuppetAdversary::Puppet> puppets;
    for (const PartyId victim : {5u, 6u}) {
      puppets.push_back(
          {victim,
           std::make_unique<core::TreeAAProcess>(tree, euler, n, t, victim,
                                                 inputs[victim]),
           PuppetAdversary::random_drops(0.3, seed * 7 + victim)});
    }
    const auto run = core::run_tree_aa(
        tree, inputs, t, {},
        std::make_unique<PuppetAdversary>(std::move(puppets)));

    std::vector<VertexId> honest_inputs(inputs.begin(), inputs.begin() + 5);
    const auto check =
        core::check_agreement(tree, honest_inputs, run.honest_outputs());
    EXPECT_TRUE(check.ok()) << "seed " << seed << " max d "
                            << check.max_pairwise_distance;
  }
}

}  // namespace
}  // namespace treeaa::sim
