// Execution tracing: transcript content and byte-for-byte determinism.
#include "sim/trace.h"

#include <gtest/gtest.h>

#include "sim/engine.h"
#include "sim/strategies.h"

namespace treeaa::sim {
namespace {

class PingProcess final : public Process {
 public:
  void on_round_begin(Round, Mailer& out) override {
    out.send((out.self() + 1) % static_cast<PartyId>(out.n()), Bytes{1, 2});
  }
  void on_round_end(Round, std::span<const Envelope>) override {}
};

Engine make_engine(std::size_t n) {
  Engine e(n, 1);
  for (PartyId p = 0; p < n; ++p) {
    e.set_process(p, std::make_unique<PingProcess>());
  }
  return e;
}

TEST(Trace, RecordsRoundsSendsAndDeliveries) {
  Engine e = make_engine(3);
  RecordingTracer tracer;
  e.set_tracer(&tracer);
  e.run(2);
  const auto text = tracer.text();
  EXPECT_NE(text.find("round 1"), std::string::npos);
  EXPECT_NE(text.find("round 2"), std::string::npos);
  EXPECT_NE(text.find("deliver 2"), std::string::npos);
  EXPECT_NE(text.find("send 0 -> 1 (2B)"), std::string::npos);
  EXPECT_EQ(tracer.message_count(), 6u);  // 3 parties x 2 rounds
}

TEST(Trace, MarksAdversarialTrafficAndCorruptions) {
  Engine e = make_engine(4);
  e.set_adversary(std::make_unique<FuzzAdversary>(std::vector<PartyId>{3},
                                                  /*seed=*/1, 2, 4));
  RecordingTracer tracer;
  e.set_tracer(&tracer);
  e.run(1);
  const auto text = tracer.text();
  EXPECT_NE(text.find("corrupt 3 @round 0"), std::string::npos);
  EXPECT_NE(text.find("byz  3 ->"), std::string::npos);
}

TEST(Trace, PayloadHexDump) {
  Engine e = make_engine(2);
  RecordingTracer tracer(/*payloads=*/true);
  e.set_tracer(&tracer);
  e.run(1);
  EXPECT_NE(tracer.text().find("0102"), std::string::npos);
}

TEST(Trace, TranscriptsAreDeterministic) {
  auto transcript = [](std::uint64_t seed) {
    Engine e = make_engine(4);
    e.set_adversary(std::make_unique<FuzzAdversary>(
        std::vector<PartyId>{0}, seed, 5, 16));
    RecordingTracer tracer(true);
    e.set_tracer(&tracer);
    e.run(4);
    return tracer.text();
  };
  EXPECT_EQ(transcript(9), transcript(9));
  EXPECT_NE(transcript(9), transcript(10));
}

TEST(Trace, ClearMakesTracerReusable) {
  RecordingTracer tracer(true);
  auto transcript = [&tracer] {
    Engine e = make_engine(3);
    e.set_tracer(&tracer);
    e.run(2);
    return tracer.text();
  };
  const std::string first = transcript();
  EXPECT_EQ(tracer.message_count(), 6u);
  tracer.clear();
  EXPECT_TRUE(tracer.lines().empty());
  EXPECT_EQ(tracer.message_count(), 0u);
  // A cleared tracer records the identical run identically.
  EXPECT_EQ(transcript(), first);
}

TEST(TrafficStats, AdversaryAccessorsSplitTheTotals) {
  Engine e = make_engine(4);
  e.set_adversary(std::make_unique<FuzzAdversary>(std::vector<PartyId>{3},
                                                  /*seed=*/1, 2, 4));
  e.run(3);
  const TrafficStats& stats = e.stats();
  EXPECT_EQ(stats.adversary_messages(), 2u * 3u);  // 2 injections x 3 rounds
  EXPECT_GT(stats.adversary_bytes(), 0u);
  EXPECT_EQ(stats.honest_messages() + stats.adversary_messages(),
            stats.total_messages());
  EXPECT_EQ(stats.honest_bytes() + stats.adversary_bytes(),
            stats.total_bytes());
  EXPECT_EQ(stats.honest_messages(), 3u * 3u);  // 3 honest parties x 3 rounds
}

TEST(ReplayAdversary, ReplaysOnlyStaleHonestPayloads) {
  Engine e = make_engine(4);
  e.set_adversary(std::make_unique<ReplayAdversary>(
      std::vector<PartyId>{3}, /*seed=*/5, /*messages_per_round=*/3));
  RecordingTracer tracer(true);
  e.set_tracer(&tracer);
  e.run(3);
  const auto& lines = tracer.lines();
  // Round 1: nothing recorded yet, so no adversarial traffic before the
  // first delivery.
  bool before_first_deliver = true;
  std::size_t replays = 0;
  for (const auto& line : lines) {
    if (line.find("deliver 1") != std::string::npos) {
      before_first_deliver = false;
    }
    if (line.find("byz") != std::string::npos) {
      EXPECT_FALSE(before_first_deliver) << line;
      // Replayed payload is the honest ping payload 0x0102.
      EXPECT_NE(line.find("0102"), std::string::npos);
      ++replays;
    }
  }
  EXPECT_EQ(replays, 6u);  // 3 per round in rounds 2 and 3
}

}  // namespace
}  // namespace treeaa::sim
