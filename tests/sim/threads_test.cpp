// The parallel engine's determinism contract at the engine level: traces,
// stats, and received bytes are byte-identical at any EngineOptions::threads
// value, and broadcast-shared payloads never alias through a corrupting
// link layer.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "sim/engine.h"
#include "sim/strategies.h"
#include "sim/trace.h"

namespace treeaa::sim {
namespace {

/// Broadcasts (round, self, inbox size of last round) every round and
/// remembers every byte it receives — enough state flow that any
/// cross-thread ordering slip would change the transcript.
class ChattyProcess final : public Process {
 public:
  explicit ChattyProcess(PartyId self) : self_(self) {}

  void on_round_begin(Round r, Mailer& out) override {
    out.broadcast(Bytes{static_cast<std::uint8_t>(r),
                        static_cast<std::uint8_t>(self_),
                        static_cast<std::uint8_t>(last_inbox_)});
    if (self_ == 0) out.send(1, Bytes{0xEE});  // some unicast traffic too
  }
  void on_round_end(Round, std::span<const Envelope> inbox) override {
    last_inbox_ = inbox.size();
    for (const Envelope& e : inbox) {
      received_.push_back({e.from, e.payload.bytes()});
    }
  }

  std::vector<std::pair<PartyId, Bytes>> received_;

 private:
  PartyId self_;
  std::size_t last_inbox_ = 0;
};

struct Transcript {
  std::string trace;
  std::vector<std::vector<std::pair<PartyId, Bytes>>> received;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

Transcript run_chatty(std::size_t threads, std::size_t n, Round rounds,
                      bool with_adversary) {
  Engine engine(n, 2, EngineOptions{threads});
  std::vector<ChattyProcess*> procs;
  for (PartyId p = 0; p < n; ++p) {
    auto proc = std::make_unique<ChattyProcess>(p);
    procs.push_back(proc.get());
    engine.set_process(p, std::move(proc));
  }
  if (with_adversary) {
    engine.set_adversary(std::make_unique<FuzzAdversary>(
        std::vector<PartyId>{2, static_cast<PartyId>(n - 1)}, /*seed=*/7,
        /*min=*/4, /*max=*/12));
  }
  RecordingTracer tracer(/*payloads=*/true);
  engine.set_tracer(&tracer);
  engine.run(rounds);

  Transcript t;
  t.trace = tracer.text();
  for (const ChattyProcess* proc : procs) t.received.push_back(proc->received_);
  t.messages = engine.stats().total_messages();
  t.bytes = engine.stats().total_bytes();
  return t;
}

TEST(EngineThreads, TranscriptIdenticalAcrossThreadCounts) {
  for (const bool adversarial : {false, true}) {
    const Transcript serial = run_chatty(1, 9, 6, adversarial);
    EXPECT_GT(serial.messages, 0u);
    for (const std::size_t threads : {2u, 3u, 8u}) {
      const Transcript parallel = run_chatty(threads, 9, 6, adversarial);
      EXPECT_EQ(parallel.trace, serial.trace)
          << "threads=" << threads << " adversarial=" << adversarial;
      EXPECT_EQ(parallel.received, serial.received);
      EXPECT_EQ(parallel.messages, serial.messages);
      EXPECT_EQ(parallel.bytes, serial.bytes);
    }
  }
}

TEST(EngineThreads, ThreadsClampToPartyCount) {
  const Engine engine(5, 1, EngineOptions{64});
  EXPECT_LE(engine.threads(), 5u);
}

/// Flips the first byte of every message addressed to party 0 — through
/// the COW handle, exactly like the net fault layer's corrupt-link path.
class CorruptForPartyZero final : public LinkLayer {
 public:
  std::vector<Envelope> deliver(Round, std::vector<Envelope> queued) override {
    for (Envelope& e : queued) {
      if (e.to == 0 && !e.payload.empty()) {
        e.payload.mutable_bytes()[0] ^= 0xFF;
      }
    }
    return queued;
  }
};

// A broadcast's payload is one shared buffer across all n envelopes; a
// corrupt link that rewrites party 0's copy must detach, never alias —
// parties 1..n-1 see pristine bytes, at every thread count.
TEST(EngineThreads, CorruptLinkDetachesSharedBroadcastPayloads) {
  for (const std::size_t threads : {1u, 4u}) {
    Engine engine(6, 1, EngineOptions{threads});
    std::vector<ChattyProcess*> procs;
    for (PartyId p = 0; p < 6; ++p) {
      auto proc = std::make_unique<ChattyProcess>(p);
      procs.push_back(proc.get());
      engine.set_process(p, std::move(proc));
    }
    CorruptForPartyZero link;
    engine.set_link_layer(&link);
    engine.run(1);

    for (PartyId p = 0; p < 6; ++p) {
      ASSERT_FALSE(procs[p]->received_.empty());
      for (const auto& [from, bytes] : procs[p]->received_) {
        if (bytes.size() != 3) continue;  // unicast 0xEE probe
        if (p == 0) {
          EXPECT_EQ(bytes[0], 1 ^ 0xFF)
              << "party 0's copy must carry the corruption";
        } else {
          EXPECT_EQ(bytes[0], 1)
              << "party " << p << " saw party 0's corruption (aliasing!)"
              << " threads=" << threads;
        }
      }
    }
  }
}

}  // namespace
}  // namespace treeaa::sim
