// RealAA (Theorem 3): Termination, Validity, eps-Agreement under the full
// adversary zoo, plus the trimmed-update and detection mechanics.
#include "realaa/real_aa.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "harness/runner.h"
#include "realaa/adversaries.h"
#include "realaa/wire.h"
#include "sim/engine.h"
#include "sim/strategies.h"

namespace treeaa::realaa {
namespace {

Config make_config(std::size_t n, std::size_t t, double D, double eps = 1.0) {
  Config cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.eps = eps;
  cfg.known_range = D;
  return cfg;
}

void expect_aa(const harness::RealRun& run, const std::vector<double>& inputs,
               const std::vector<PartyId>& corrupt, double eps) {
  // Range of honest inputs.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (PartyId p = 0; p < inputs.size(); ++p) {
    if (std::find(corrupt.begin(), corrupt.end(), p) != corrupt.end()) {
      continue;
    }
    lo = std::min(lo, inputs[p]);
    hi = std::max(hi, inputs[p]);
  }
  const auto outs = run.honest_outputs();
  ASSERT_FALSE(outs.empty());
  for (const double v : outs) {
    EXPECT_GE(v, lo - 1e-12);  // Validity
    EXPECT_LE(v, hi + 1e-12);
  }
  EXPECT_LE(run.output_range(), eps + 1e-12);  // eps-Agreement
}

TEST(RealAA, HonestRunConvergesToExactAgreement) {
  const auto cfg = make_config(4, 1, 100.0);
  const std::vector<double> inputs{0.0, 100.0, 25.0, 60.0};
  const auto run = harness::run_real_aa(cfg, inputs);
  expect_aa(run, inputs, {}, cfg.eps);
  // With no Byzantine interference the multisets coincide, so one iteration
  // in, everyone holds the identical value.
  EXPECT_EQ(run.output_range(), 0.0);
}

TEST(RealAA, ZeroIterationConfigOutputsInput) {
  const auto cfg = make_config(4, 1, 0.5);  // D < eps
  const std::vector<double> inputs{0.1, 0.2, 0.3, 0.15};
  const auto run = harness::run_real_aa(cfg, inputs);
  EXPECT_EQ(run.rounds, 0u);
  for (PartyId p = 0; p < 4; ++p) EXPECT_EQ(*run.outputs[p], inputs[p]);
}

TEST(RealAA, TerminationWithinConfiguredRounds) {
  for (double D : {2.0, 50.0, 5000.0}) {
    const auto cfg = make_config(7, 2, D);
    const auto inputs = harness::spread_real_inputs(7, 0.0, D);
    const auto run = harness::run_real_aa(cfg, inputs);
    EXPECT_EQ(run.rounds, cfg.rounds());
    EXPECT_EQ(run.rounds, 3 * cfg.iterations());
    expect_aa(run, inputs, {}, cfg.eps);
  }
}

TEST(RealAA, SilentByzantineDoNotAffectGuarantees) {
  const auto cfg = make_config(7, 2, 1000.0);
  const auto inputs = harness::spread_real_inputs(7, -500.0, 500.0);
  auto adv =
      std::make_unique<sim::SilentAdversary>(std::vector<PartyId>{0, 6});
  const auto run = harness::run_real_aa(cfg, inputs, std::move(adv));
  expect_aa(run, inputs, {0, 6}, cfg.eps);
}

TEST(RealAA, FuzzGarbageCannotBreakAgreement) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto cfg = make_config(7, 2, 128.0);
    Rng rng(seed);
    const auto inputs = harness::random_real_inputs(7, 0.0, 128.0, rng);
    auto adv = std::make_unique<sim::FuzzAdversary>(
        std::vector<PartyId>{2, 4}, seed, 30, 60);
    const auto run = harness::run_real_aa(cfg, inputs, std::move(adv));
    expect_aa(run, inputs, {2, 4}, cfg.eps);
  }
}

TEST(RealAA, ExtremeInputPuppetsCannotDragOutputs) {
  // Corrupt parties run the protocol honestly but with inputs far outside
  // the honest range; Validity must confine honest outputs regardless.
  const auto cfg = make_config(10, 3, 10.0);
  std::vector<double> inputs(10, 0.0);
  for (PartyId p = 0; p < 10; ++p) inputs[p] = static_cast<double>(p % 4);
  auto adv = harness::make_extreme_input_puppets(cfg, {7, 8, 9}, -1e6, 1e6);
  const auto run = harness::run_real_aa(cfg, inputs, std::move(adv));
  expect_aa(run, inputs, {7, 8, 9}, cfg.eps);
}

TEST(RealAA, CrashMidProtocolIsTolerated) {
  const auto cfg = make_config(7, 2, 300.0);
  const auto inputs = harness::spread_real_inputs(7, 0.0, 300.0);
  auto adv = std::make_unique<sim::CrashAdversary>(
      std::vector<sim::CrashAdversary::Crash>{{1, 2, 0.5}, {5, 4, 0.0}});
  const auto run = harness::run_real_aa(cfg, inputs, std::move(adv));
  expect_aa(run, inputs, {1, 5}, cfg.eps);
}

TEST(RealAA, SubUnitEpsilonTargets) {
  // eps far below 1 (the clock-sync regime): the guarantee scales.
  for (double eps : {0.1, 1e-3, 1e-6}) {
    const std::size_t n = 7, t = 2;
    Config cfg = make_config(n, t, 100.0, eps);
    const auto inputs = harness::spread_real_inputs(n, 0.0, 100.0);
    SplitAdversary::Options opts;
    opts.config = cfg;
    opts.corrupt = {5, 6};
    const auto run = harness::run_real_aa(
        cfg, inputs, std::make_unique<SplitAdversary>(std::move(opts)));
    EXPECT_LE(run.output_range(), eps) << "eps " << eps;
    EXPECT_EQ(run.rounds, cfg.rounds());
  }
}

TEST(RealAA, LargeScaleSmoke) {
  // Guard against scale regressions: n = 31 with the full adversary budget.
  const std::size_t n = 31, t = 10;
  const auto cfg = make_config(n, t, 1e6);
  const auto inputs = harness::spread_real_inputs(n, 0.0, 1e6);
  SplitAdversary::Options opts;
  opts.config = cfg;
  for (std::size_t i = 0; i < t; ++i) {
    opts.corrupt.push_back(static_cast<PartyId>(n - 1 - i));
  }
  opts.schedule.assign(cfg.iterations(), 1);
  const auto run = harness::run_real_aa(
      cfg, inputs, std::make_unique<SplitAdversary>(std::move(opts)));
  expect_aa(run, inputs, run.corrupt, cfg.eps);
}

// --- The split attack (Fekete-style) ----------------------------------------

TEST(RealAA, SplitAdversaryCannotBreakAgreementOrValidity) {
  for (std::size_t n : {4u, 7u, 10u, 13u, 16u}) {
    const std::size_t t = (n - 1) / 3;
    const auto cfg = make_config(n, t, 1000.0);
    const auto inputs = harness::spread_real_inputs(n, 0.0, 1000.0);
    SplitAdversary::Options opts;
    opts.config = cfg;
    for (std::size_t i = 0; i < t; ++i) {
      opts.corrupt.push_back(static_cast<PartyId>(n - 1 - i));
    }
    auto run = harness::run_real_aa(
        cfg, inputs, std::make_unique<SplitAdversary>(std::move(opts)));
    expect_aa(run, inputs, run.corrupt, cfg.eps);
  }
}

TEST(RealAA, SplitAdversaryActuallySlowsConvergence) {
  // Sanity check that the attack bites: after iteration 1 the honest values
  // must NOT have collapsed to a point (they do in any honest run).
  const std::size_t n = 10, t = 3;
  const auto cfg = make_config(n, t, 1000.0);
  const auto inputs = harness::spread_real_inputs(n, 0.0, 1000.0);
  SplitAdversary::Options opts;
  opts.config = cfg;
  opts.corrupt = {7, 8, 9};
  opts.schedule.assign(cfg.iterations(), 1);  // one equivocator per iteration
  const auto run = harness::run_real_aa(
      cfg, inputs, std::make_unique<SplitAdversary>(std::move(opts)));
  double range_after_1 = 0;
  double lo = std::numeric_limits<double>::infinity(), hi = -lo;
  for (PartyId p = 0; p < n; ++p) {
    if (run.histories[p].empty()) continue;
    lo = std::min(lo, run.histories[p][1]);
    hi = std::max(hi, run.histories[p][1]);
  }
  range_after_1 = hi - lo;
  EXPECT_GT(range_after_1, 0.0);
  // And yet the final guarantee still holds.
  expect_aa(run, inputs, run.corrupt, cfg.eps);
}

TEST(RealAA, PerIterationContractionRespectsTheoreticalFactor) {
  // In an iteration with t_i fresh equivocators, the range contracts by at
  // least a factor t_i / (n - 2t) (paper §4). Verify per-iteration ranges
  // against that envelope under the optimal split schedule.
  const std::size_t n = 13, t = 4;
  const auto cfg = make_config(n, t, 10000.0);
  const auto inputs = harness::spread_real_inputs(n, 0.0, 10000.0);
  SplitAdversary::Options opts;
  opts.config = cfg;
  opts.corrupt = {9, 10, 11, 12};
  const auto schedule = [&] {
    std::vector<std::size_t> s(cfg.iterations(), 0);
    for (std::size_t i = 0; i < opts.corrupt.size() && i < s.size(); ++i) {
      s[i] = 1;
    }
    return s;
  }();
  opts.schedule = schedule;
  const auto run = harness::run_real_aa(
      cfg, inputs, std::make_unique<SplitAdversary>(std::move(opts)));

  const std::size_t iters = cfg.iterations();
  std::vector<double> range(iters + 1, 0.0);
  for (std::size_t k = 0; k <= iters; ++k) {
    double lo = std::numeric_limits<double>::infinity(), hi = -lo;
    for (PartyId p = 0; p < n; ++p) {
      if (run.histories[p].empty()) continue;
      lo = std::min(lo, run.histories[p][k]);
      hi = std::max(hi, run.histories[p][k]);
    }
    range[k] = hi - lo;
  }
  for (std::size_t k = 1; k <= iters; ++k) {
    const double t_k = static_cast<double>(schedule[k - 1]);
    const double envelope =
        range[k - 1] * (t_k + 1.0) / static_cast<double>(n - 2 * t);
    EXPECT_LE(range[k], envelope + 1e-9) << "iteration " << k;
  }
  expect_aa(run, inputs, run.corrupt, cfg.eps);
}

// --- Detection mechanics -----------------------------------------------------

TEST(RealAA, EquivocatorsEndUpInEveryHonestFaultSet) {
  const std::size_t n = 7, t = 2;
  const auto cfg = make_config(n, t, 100.0);
  const auto inputs = harness::spread_real_inputs(n, 0.0, 100.0);

  sim::Engine engine(n, t);
  std::vector<RealAAProcess*> procs(n);
  for (PartyId p = 0; p < n; ++p) {
    auto proc = std::make_unique<RealAAProcess>(cfg, p, inputs[p]);
    procs[p] = proc.get();
    engine.set_process(p, std::move(proc));
  }
  SplitAdversary::Options opts;
  opts.config = cfg;
  opts.corrupt = {5, 6};
  opts.schedule = {2};  // both equivocate in iteration 1
  engine.set_adversary(std::make_unique<SplitAdversary>(std::move(opts)));
  engine.run(static_cast<Round>(cfg.rounds()));

  for (PartyId p = 0; p < n; ++p) {
    if (engine.is_corrupt(p)) continue;
    EXPECT_TRUE(procs[p]->fault_set()[5]) << "party " << p;
    EXPECT_TRUE(procs[p]->fault_set()[6]) << "party " << p;
    // Honest parties never accuse each other.
    for (PartyId q = 0; q < 5; ++q) {
      EXPECT_FALSE(procs[p]->fault_set()[q]) << p << " accused " << q;
    }
  }
}

TEST(RealAA, HistoryTracksEveryIteration) {
  const auto cfg = make_config(4, 1, 64.0);
  const std::vector<double> inputs{0, 64, 32, 16};
  const auto run = harness::run_real_aa(cfg, inputs);
  for (PartyId p = 0; p < 4; ++p) {
    ASSERT_EQ(run.histories[p].size(), cfg.iterations() + 1);
    EXPECT_EQ(run.histories[p].front(), inputs[p]);
    EXPECT_EQ(run.histories[p].back(), *run.outputs[p]);
  }
}

TEST(RealAA, RejectsBadConfig) {
  EXPECT_THROW(RealAAProcess(make_config(3, 1, 10.0), 0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(RealAAProcess(make_config(4, 1, 10.0), 4, 0.0),
               std::invalid_argument);
}

// --- trimmed_update ----------------------------------------------------------

TEST(TrimmedUpdate, MeanAndMidpoint) {
  EXPECT_EQ(trimmed_update({1, 2, 3}, 0, UpdateRule::kTrimmedMean), 2.0);
  EXPECT_EQ(trimmed_update({5, 100, -100, 7, 9}, 1, UpdateRule::kTrimmedMean),
            7.0);
  EXPECT_EQ(
      trimmed_update({5, 100, -100, 7, 8}, 1, UpdateRule::kTrimmedMidpoint),
      6.5);
}

TEST(TrimmedUpdate, ResultInsideTrimmedRange) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t t = rng.index(3);
    const std::size_t m = 2 * t + 1 + rng.index(8);
    std::vector<double> w;
    for (std::size_t i = 0; i < m; ++i) {
      w.push_back(rng.unit() * 100 - 50);
    }
    auto sorted = w;
    std::sort(sorted.begin(), sorted.end());
    const double lo = sorted[t];
    const double hi = sorted[m - 1 - t];
    for (const auto rule :
         {UpdateRule::kTrimmedMean, UpdateRule::kTrimmedMidpoint}) {
      const double v = trimmed_update(w, t, rule);
      EXPECT_GE(v, lo - 1e-12);
      EXPECT_LE(v, hi + 1e-12);
    }
  }
}

TEST(TrimmedUpdate, RequiresEnoughValues) {
  EXPECT_THROW(
      (void)trimmed_update({1, 2}, 1, UpdateRule::kTrimmedMean),
      std::invalid_argument);
}

// --- Value wire --------------------------------------------------------------

TEST(ValueWire, RoundTrip) {
  for (double v : {0.0, -1.5, 3.25, 1e300, -1e-300}) {
    EXPECT_EQ(*decode_value(encode_value(v)), v);
  }
}

TEST(ValueWire, RejectsNonFiniteAndGarbage) {
  EXPECT_FALSE(
      decode_value(encode_value(std::numeric_limits<double>::quiet_NaN()))
          .has_value());
  EXPECT_FALSE(
      decode_value(encode_value(std::numeric_limits<double>::infinity()))
          .has_value());
  EXPECT_FALSE(decode_value(Bytes{1, 2, 3}).has_value());
  Bytes trailing = encode_value(1.0);
  trailing.push_back(0);
  EXPECT_FALSE(decode_value(trailing).has_value());
}

// --- Parameterized sweep -----------------------------------------------------

struct SweepParam {
  std::size_t n;
  std::uint64_t seed;
};

class RealAASweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RealAASweep, AAHoldsUnderMixedAdversaries) {
  const auto [n, seed] = GetParam();
  const std::size_t t = (n - 1) / 3;
  Rng rng(seed);
  const double D = 10.0 + rng.unit() * 1e5;
  const auto cfg = make_config(n, t, D);
  const auto inputs = harness::random_real_inputs(n, -D / 2, D / 2, rng);

  std::unique_ptr<sim::Adversary> adv;
  auto victims = sim::random_parties(n, t, rng);
  switch (seed % 5) {
    case 0:
      adv = std::make_unique<sim::SilentAdversary>(victims);
      break;
    case 1:
      adv = std::make_unique<sim::FuzzAdversary>(victims, seed, 16, 48);
      break;
    case 2: {
      SplitAdversary::Options opts;
      opts.config = cfg;
      opts.corrupt = victims;
      adv = std::make_unique<SplitAdversary>(std::move(opts));
      break;
    }
    case 3:
      adv = std::make_unique<sim::ReplayAdversary>(victims, seed, 24);
      break;
    default:
      adv = harness::make_extreme_input_puppets(cfg, victims, -1e9, 1e9);
      break;
  }
  auto run = harness::run_real_aa(cfg, inputs, std::move(adv));
  expect_aa(run, inputs, run.corrupt, cfg.eps);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RealAASweep,
    ::testing::Values(SweepParam{4, 1}, SweepParam{4, 2}, SweepParam{7, 3},
                      SweepParam{7, 4}, SweepParam{10, 5}, SweepParam{10, 6},
                      SweepParam{13, 7}, SweepParam{13, 8}, SweepParam{16, 9},
                      SweepParam{16, 10}, SweepParam{19, 11},
                      SweepParam{25, 12}));

}  // namespace
}  // namespace treeaa::realaa
