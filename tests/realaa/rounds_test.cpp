// Iteration/round budget formulas (Theorem 3).
#include "realaa/rounds.h"

#include <gtest/gtest.h>

#include <cmath>

namespace treeaa::realaa {
namespace {

TEST(Rounds, PaperSufficientBasics) {
  EXPECT_EQ(iterations_paper_sufficient(0.0, 1.0), 0u);
  EXPECT_EQ(iterations_paper_sufficient(1.0, 1.0), 0u);
  EXPECT_EQ(iterations_paper_sufficient(1.0, 2.0), 0u);   // D < eps
  EXPECT_EQ(iterations_paper_sufficient(2.0, 1.0), 2u);   // 1^1 < 2 <= 2^2
  EXPECT_EQ(iterations_paper_sufficient(4.0, 1.0), 2u);   // 2^2 = 4
  EXPECT_EQ(iterations_paper_sufficient(5.0, 1.0), 3u);
  EXPECT_EQ(iterations_paper_sufficient(27.0, 1.0), 3u);  // 3^3 = 27
  EXPECT_EQ(iterations_paper_sufficient(28.0, 1.0), 4u);
}

TEST(Rounds, PaperSufficientSatisfiesRpowR) {
  for (double delta : {1.5, 3.0, 10.0, 100.0, 1e4, 1e8, 1e15}) {
    const std::size_t r = iterations_paper_sufficient(delta, 1.0);
    ASSERT_GE(r, 1u);
    const double rd = static_cast<double>(r);
    EXPECT_GE(rd * std::log(rd) + 1e-9, std::log(delta)) << delta;
    if (r > 1) {
      const double prev = rd - 1;
      EXPECT_LT(prev * std::log(prev), std::log(delta)) << delta;
    }
  }
}

TEST(Rounds, PaperSufficientScalesWithEps) {
  // Only the ratio D/eps matters.
  EXPECT_EQ(iterations_paper_sufficient(100.0, 1.0),
            iterations_paper_sufficient(1000.0, 10.0));
}

TEST(Rounds, PaperSufficientIsMonotoneInDelta) {
  std::size_t prev = 0;
  for (double d = 1.0; d < 1e12; d *= 3) {
    const std::size_t r = iterations_paper_sufficient(d, 1.0);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST(Rounds, Theorem3BoundDominatesProtocolRounds) {
  // 3 * iterations (the protocol's actual rounds) must stay below the
  // ceil(7 log2(delta)/log2 log2(delta)) bound of Theorem 3.
  for (double delta = 2.0; delta < 1e15; delta *= 1.7) {
    const std::size_t rounds = 3 * iterations_paper_sufficient(delta, 1.0);
    EXPECT_LE(rounds, theorem3_round_bound(delta, 1.0)) << "delta " << delta;
  }
}

TEST(Rounds, Theorem3BoundEdgeCases) {
  EXPECT_EQ(theorem3_round_bound(1.0, 1.0), 0u);
  EXPECT_EQ(theorem3_round_bound(0.5, 1.0), 0u);
  EXPECT_GT(theorem3_round_bound(2.0, 1.0), 0u);
  EXPECT_THROW((void)theorem3_round_bound(1.0, 0.0), std::invalid_argument);
}

TEST(Rounds, TightNeverExceedsPaperSufficient) {
  for (double delta : {2.0, 10.0, 1e3, 1e6, 1e9}) {
    for (std::size_t n : {4u, 10u, 31u, 100u}) {
      const std::size_t t = (n - 1) / 3;
      EXPECT_LE(iterations_tight(delta, 1.0, n, t),
                iterations_paper_sufficient(delta, 1.0))
          << "delta=" << delta << " n=" << n;
    }
  }
}

TEST(Rounds, TightGuaranteeHolds) {
  for (double delta : {2.0, 100.0, 1e6}) {
    for (std::size_t n : {4u, 16u}) {
      const std::size_t t = (n - 1) / 3;
      const std::size_t r = iterations_tight(delta, 1.0, n, t);
      ASSERT_GE(r, 1u);
      const double rd = static_cast<double>(r);
      const double factor =
          static_cast<double>(t) / (static_cast<double>(n - 2 * t) * rd);
      EXPECT_LE(delta * std::pow(factor, rd), 1.0 + 1e-9);
    }
  }
}

TEST(Rounds, TightWithZeroFaultsIsOneIteration) {
  EXPECT_EQ(iterations_tight(100.0, 1.0, 4, 0), 1u);
  EXPECT_EQ(iterations_tight(0.5, 1.0, 4, 0), 0u);
}

TEST(Rounds, TightRejectsBadResilience) {
  EXPECT_THROW((void)iterations_tight(10.0, 1.0, 3, 1),
               std::invalid_argument);
}

TEST(Rounds, DispatchMatches) {
  EXPECT_EQ(iterations_for(IterationMode::kPaperSufficient, 50, 1, 7, 2),
            iterations_paper_sufficient(50, 1));
  EXPECT_EQ(iterations_for(IterationMode::kTight, 50, 1, 7, 2),
            iterations_tight(50, 1, 7, 2));
}

}  // namespace
}  // namespace treeaa::realaa
