// Adversarial decoding of the RealAA value codec: truncated, oversized and
// random byte strings, plus the non-finite escape hatches a Byzantine
// leader would love to sneak past the trimming step.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "common/rng.h"
#include "realaa/wire.h"

namespace treeaa::realaa {
namespace {

Bytes raw_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  Bytes b(8);
  for (int i = 0; i < 8; ++i) {
    b[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bits >> (8 * i));
  }
  return b;
}

TEST(RealAAWireFuzz, RoundTripsFiniteValues) {
  for (const double v : {0.0, -0.0, 1.5, -3.25, 1e300, -1e-300,
                         std::numeric_limits<double>::max(),
                         std::numeric_limits<double>::denorm_min()}) {
    const auto decoded = decode_value(encode_value(v));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, v);
  }
}

TEST(RealAAWireFuzz, EncodingGoldenBytes) {
  // Pins the little-endian IEEE-754 layout the SIMD store path must
  // reproduce bit for bit across dispatch levels.
  EXPECT_EQ(encode_value(1.0), (Bytes{0, 0, 0, 0, 0, 0, 0xF0, 0x3F}));
  EXPECT_EQ(encode_value(-2.0), (Bytes{0, 0, 0, 0, 0, 0, 0x00, 0xC0}));
  EXPECT_EQ(encode_value(0.0), (Bytes{0, 0, 0, 0, 0, 0, 0, 0}));
}

TEST(RealAAWireFuzz, RejectsTruncatedAndOversized) {
  const Bytes msg = encode_value(42.0);
  ASSERT_EQ(msg.size(), 8u);
  for (std::size_t len = 0; len < msg.size(); ++len) {
    const Bytes prefix(msg.begin(), msg.begin() + static_cast<long>(len));
    EXPECT_EQ(decode_value(prefix), std::nullopt) << "prefix length " << len;
  }
  Bytes oversized = msg;
  oversized.push_back(0);
  EXPECT_EQ(decode_value(oversized), std::nullopt);
  EXPECT_EQ(decode_value(Bytes(64, 0xFF)), std::nullopt);
}

TEST(RealAAWireFuzz, RejectsNonFiniteBitPatterns) {
  EXPECT_EQ(decode_value(raw_f64(std::numeric_limits<double>::quiet_NaN())),
            std::nullopt);
  EXPECT_EQ(
      decode_value(raw_f64(std::numeric_limits<double>::signaling_NaN())),
      std::nullopt);
  EXPECT_EQ(decode_value(raw_f64(std::numeric_limits<double>::infinity())),
            std::nullopt);
  EXPECT_EQ(decode_value(raw_f64(-std::numeric_limits<double>::infinity())),
            std::nullopt);
}

TEST(RealAAWireFuzz, RandomBytesDecodeFiniteOrNotAtAll) {
  Rng rng(0xF10A7);
  int decoded_count = 0;
  for (int iter = 0; iter < 5000; ++iter) {
    Bytes msg(rng.chance(0.8) ? 8 : rng.index(16), 0);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next() & 0xFF);
    const auto v = decode_value(msg);
    if (v.has_value()) {
      ++decoded_count;
      EXPECT_TRUE(std::isfinite(*v));
      EXPECT_EQ(encode_value(*v), msg);  // canonical: bit-exact round-trip
    } else {
      EXPECT_TRUE(msg.size() != 8 || !std::isfinite(
          [&] {
            double d;
            std::memcpy(&d, msg.data(), 8);
            return d;
          }()));
    }
  }
  // Random 8-byte strings are overwhelmingly finite doubles; the loop must
  // actually have exercised the accept path.
  EXPECT_GT(decoded_count, 1000);
}

}  // namespace
}  // namespace treeaa::realaa
