// Exhaustive structural coverage: EVERY labeled tree on 2..5 vertices
// (enumerated via Prüfer sequences — k^(k-2) trees per size), with sampled
// input assignments, must satisfy all three AA properties, for both the
// main protocol and the baselines. Small cases are where off-by-one index
// bugs (1-based Euler lists, path positions, the Figure-5 clamp) live.
#include <gtest/gtest.h>

#include <cmath>

#include "core/api.h"
#include "harness/runner.h"
#include "trees/generators.h"
#include "trees/labeled_tree.h"

namespace treeaa::core {
namespace {

/// Builds the labeled tree decoded from a Prüfer sequence over k vertices.
LabeledTree tree_from_pruefer(const std::vector<std::size_t>& code,
                              std::size_t k) {
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < k; ++i) {
    labels.push_back("v" + std::to_string(i));
  }
  std::vector<std::size_t> deg(k, 1);
  for (const std::size_t x : code) ++deg[x];
  std::vector<std::pair<std::string, std::string>> edges;
  std::size_t ptr = 0;
  while (deg[ptr] != 1) ++ptr;
  std::size_t leaf = ptr;
  for (const std::size_t v : code) {
    edges.emplace_back(labels[leaf], labels[v]);
    if (--deg[v] == 1 && v < ptr) {
      leaf = v;
    } else {
      ++ptr;
      while (deg[ptr] != 1) ++ptr;
      leaf = ptr;
    }
  }
  edges.emplace_back(labels[leaf], labels[k - 1]);
  return LabeledTree::from_edges(edges);
}

/// Enumerates every Prüfer sequence of length k - 2 over [0, k).
std::vector<LabeledTree> all_trees(std::size_t k) {
  std::vector<LabeledTree> trees;
  if (k == 2) {
    trees.push_back(LabeledTree::from_edges({{"v0", "v1"}}));
    return trees;
  }
  std::vector<std::size_t> code(k - 2, 0);
  while (true) {
    trees.push_back(tree_from_pruefer(code, k));
    std::size_t i = 0;
    while (i < code.size() && code[i] == k - 1) code[i++] = 0;
    if (i == code.size()) break;
    ++code[i];
  }
  return trees;
}

class ExhaustiveSmallTrees : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ExhaustiveSmallTrees, TreeAAHoldsOnEveryTreeShape) {
  const std::size_t k = GetParam();
  const auto trees = all_trees(k);
  EXPECT_EQ(trees.size(),
            k == 2 ? 1u
                   : static_cast<std::size_t>(
                         std::pow(static_cast<double>(k),
                                  static_cast<double>(k - 2))));
  Rng rng(0xE0 + k);
  const std::size_t n = 4, t = 1;
  for (const auto& tree : trees) {
    for (int assignment = 0; assignment < 8; ++assignment) {
      const auto inputs = harness::random_vertex_inputs(tree, n, rng);
      const auto run = run_tree_aa(tree, inputs, t);
      const auto check =
          check_agreement(tree, inputs, run.honest_outputs());
      ASSERT_TRUE(check.ok())
          << "k=" << k << " tree root-parents failed, assignment "
          << assignment << " max d " << check.max_pairwise_distance;
    }
  }
}

TEST_P(ExhaustiveSmallTrees, BaselineHoldsOnEveryTreeShape) {
  const std::size_t k = GetParam();
  Rng rng(0xB0 + k);
  const std::size_t n = 4, t = 1;
  for (const auto& tree : all_trees(k)) {
    const auto inputs = harness::random_vertex_inputs(tree, n, rng);
    const auto run = harness::run_iterated_tree_aa(tree, n, t, inputs);
    ASSERT_TRUE(
        check_agreement(tree, inputs, run.honest_outputs()).ok())
        << "k=" << k;
  }
}

TEST_P(ExhaustiveSmallTrees, EulerPropertiesOnEveryTreeShape) {
  const std::size_t k = GetParam();
  for (const auto& tree : all_trees(k)) {
    const EulerList L(tree);
    ASSERT_EQ(L.size(), 2 * k - 1);
    for (std::size_t i = 1; i < L.size(); ++i) {
      const auto nbrs = tree.neighbors(L.at(i));
      ASSERT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), L.at(i + 1)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExhaustiveSmallTrees,
                         ::testing::Values(2, 3, 4, 5));

}  // namespace
}  // namespace treeaa::core
