// The §4 warm-up protocol: AA on labeled paths.
#include "core/path_aa.h"

#include <gtest/gtest.h>

#include "core/api.h"
#include "harness/runner.h"
#include "sim/strategies.h"
#include "trees/generators.h"

namespace treeaa::core {
namespace {

TEST(CanonicalPathOrder, OrientsFromLowerLabel) {
  const auto t = make_path(5);  // labels v0..v4
  const auto order = canonical_path_order(t);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(t.label(order.front()), "v0");
  EXPECT_EQ(t.label(order.back()), "v4");
}

TEST(CanonicalPathOrder, SingleVertex) {
  const auto t = LabeledTree::single("x");
  EXPECT_EQ(canonical_path_order(t), std::vector<VertexId>{0});
}

TEST(CanonicalPathOrder, RejectsNonPath) {
  const auto star = make_star(4);
  EXPECT_THROW((void)canonical_path_order(star), std::invalid_argument);
}

TEST(PathAA, HonestRunSatisfiesAA) {
  const auto path = make_path(100);
  const std::size_t n = 7, t = 2;
  const auto inputs = harness::spread_vertex_inputs(path, n);
  const auto run = harness::run_path_aa(path, n, t, inputs);
  const auto check = check_agreement(path, inputs, run.honest_outputs());
  EXPECT_TRUE(check.ok()) << "max distance " << check.max_pairwise_distance;
}

TEST(PathAA, TrivialPathsTerminateWithoutRounds) {
  const auto p2 = make_path(2);
  const std::vector<VertexId> inputs{0, 1, 1, 0};
  const auto run = harness::run_path_aa(p2, 4, 1, inputs);
  EXPECT_EQ(run.rounds, 0u);
  for (PartyId p = 0; p < 4; ++p) EXPECT_EQ(*run.outputs[p], inputs[p]);
}

TEST(PathAA, RoundsMatchRealAAOfDiameter) {
  const auto path = make_path(1000);
  realaa::Config expect_cfg;
  expect_cfg.n = 7;
  expect_cfg.t = 2;
  expect_cfg.eps = 1.0;
  expect_cfg.known_range = 999.0;
  const PathAAProcess probe(path, 7, 2, 0, 0);
  EXPECT_EQ(probe.rounds(), expect_cfg.rounds());
}

TEST(PathAA, ClassicEngineAlsoSatisfiesAA) {
  const auto path = make_path(200);
  PathAAOptions opts;
  opts.engine = RealEngineKind::kClassicHalving;
  const std::size_t n = 7, t = 2;
  const auto inputs = harness::spread_vertex_inputs(path, n);
  auto adv =
      std::make_unique<sim::SilentAdversary>(std::vector<PartyId>{0, 3});
  const auto run = harness::run_path_aa(path, n, t, inputs, std::move(adv),
                                        opts);
  std::vector<VertexId> honest_inputs;
  for (PartyId p = 0; p < n; ++p) {
    if (p != 0 && p != 3) honest_inputs.push_back(inputs[p]);
  }
  EXPECT_TRUE(
      check_agreement(path, honest_inputs, run.honest_outputs()).ok());
  // The classic engine pays log2(D) iterations instead of log/loglog.
  const PathAAProcess fast_probe(path, n, t, 0, 0);
  EXPECT_GT(run.rounds, fast_probe.rounds());
}

class PathAASweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathAASweep, AAHoldsUnderAdversaries) {
  Rng rng(GetParam());
  const std::size_t len = 2 + rng.index(300);
  const auto path = make_path(len);
  const std::size_t n = 4 + rng.index(10);
  const std::size_t t = (n - 1) / 3;
  const auto inputs = harness::random_vertex_inputs(path, n, rng);

  std::unique_ptr<sim::Adversary> adv;
  const auto victims = sim::random_parties(n, t, rng);
  if (GetParam() % 2 == 0) {
    adv = std::make_unique<sim::FuzzAdversary>(victims, GetParam(), 12, 32);
  } else {
    adv = std::make_unique<sim::SilentAdversary>(victims);
  }
  auto run = harness::run_path_aa(path, n, t, inputs, std::move(adv));

  std::vector<VertexId> honest_inputs;
  for (PartyId p = 0; p < n; ++p) {
    if (std::find(run.corrupt.begin(), run.corrupt.end(), p) ==
        run.corrupt.end()) {
      honest_inputs.push_back(inputs[p]);
    }
  }
  const auto check =
      check_agreement(path, honest_inputs, run.honest_outputs());
  EXPECT_TRUE(check.valid) << "seed " << GetParam();
  EXPECT_TRUE(check.one_agreement)
      << "seed " << GetParam() << " max d " << check.max_pairwise_distance;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathAASweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace treeaa::core
