// PathsFinder (Lemma 4): both guarantees — hull intersection and
// prefix-by-at-most-one-edge — across tree families, seeds and adversaries.
#include "core/paths_finder.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "harness/runner.h"
#include "realaa/adversaries.h"
#include "sim/engine.h"
#include "sim/strategies.h"
#include "trees/generators.h"
#include "trees/paths.h"

namespace treeaa::core {
namespace {

void expect_lemma4(const LabeledTree& tree,
                   const std::vector<VertexId>& honest_inputs,
                   const std::vector<std::vector<VertexId>>& honest_paths) {
  ASSERT_FALSE(honest_paths.empty());
  // Property 1: every path is a root-anchored simple path intersecting the
  // honest inputs' convex hull.
  for (const auto& p : honest_paths) {
    ASSERT_FALSE(p.empty());
    EXPECT_EQ(p.front(), tree.root());
    EXPECT_TRUE(is_simple_path(tree, p));
    const bool intersects = std::any_of(
        p.begin(), p.end(),
        [&](VertexId v) { return in_hull(tree, honest_inputs, v); });
    EXPECT_TRUE(intersects);
  }
  // Property 2: all paths are prefixes of the longest one, and lengths
  // differ by at most one edge.
  const auto longest = *std::max_element(
      honest_paths.begin(), honest_paths.end(),
      [](const auto& a, const auto& b) { return a.size() < b.size(); });
  for (const auto& p : honest_paths) {
    EXPECT_GE(p.size() + 1, longest.size());
    for (std::size_t i = 0; i < p.size(); ++i) {
      EXPECT_EQ(p[i], longest[i]) << "divergence at position " << i;
    }
  }
}

TEST(PathsFinder, HonestRunOnFigure3) {
  const auto tree = make_figure3_tree();
  const std::size_t n = 4, t = 1;
  // Inputs from the paper's §6 example: v3, v6, v5 (+ v3 again to fill n).
  const std::vector<VertexId> inputs{*tree.find("v3"), *tree.find("v6"),
                                     *tree.find("v5"), *tree.find("v3")};
  const auto run = harness::run_paths_finder(tree, n, t, inputs);
  expect_lemma4(tree, inputs, run.honest_paths());
}

TEST(PathsFinder, SingleVertexTree) {
  const auto tree = LabeledTree::single("r");
  const std::vector<VertexId> inputs{0, 0, 0, 0};
  const auto run = harness::run_paths_finder(tree, 4, 1, inputs);
  EXPECT_EQ(run.rounds, 0u);
  for (const auto& p : run.honest_paths()) {
    EXPECT_EQ(p, std::vector<VertexId>{0});
  }
}

TEST(PathsFinder, RoundBudgetMatchesLemma4) {
  // R_PathsFinder = R_RealAA(<= 2|V|, 1).
  Rng rng(3);
  const auto tree = make_random_tree(200, rng);
  const auto cfg = paths_finder_config(tree, 7, 2, {});
  EXPECT_EQ(cfg.known_range, static_cast<double>(2 * tree.n() - 2));
  const std::vector<VertexId> inputs(7, 0);
  const auto run = harness::run_paths_finder(tree, 7, 2, inputs);
  EXPECT_EQ(run.rounds, cfg.rounds());
  // Theorem 3 guard: rounds within the closed-form bound for D = 2|V|.
  EXPECT_LE(cfg.rounds(), realaa::theorem3_round_bound(
                              static_cast<double>(2 * tree.n()), 1.0));
}

TEST(PathsFinder, AllSameInputYieldsPathToThatVertexSubtree) {
  Rng rng(5);
  const auto tree = make_random_tree(60, rng);
  const auto v = static_cast<VertexId>(rng.index(tree.n()));
  const std::vector<VertexId> inputs(7, v);
  const auto run = harness::run_paths_finder(tree, 7, 2, inputs);
  // Hull of {v} is {v}: every path must contain v... more precisely it must
  // intersect {v}, i.e. pass through v.
  for (const auto& p : run.honest_paths()) {
    EXPECT_NE(std::find(p.begin(), p.end(), v), p.end());
  }
}

// §6 "without loss of generality": the Euler index fed into RealAA may be
// ANY member of L(v_IN) — and different honest parties may pick
// differently. Mix min- and max-occurrence choosers in one execution and
// check Lemma 4 still holds.
TEST(PathsFinder, MixedIndexChoicesPreserveLemma4) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 13);
    const auto tree = make_random_tree(10 + rng.index(80), rng);
    const EulerList euler(tree);
    const std::size_t n = 7, t = 2;
    const auto inputs = harness::random_vertex_inputs(tree, n, rng);

    sim::Engine engine(n, t);
    std::vector<PathsFinderProcess*> procs(n);
    for (PartyId p = 0; p < n; ++p) {
      PathsFinderOptions opts;
      opts.index_choice = p % 2 == 0 ? EulerIndexChoice::kMinOccurrence
                                     : EulerIndexChoice::kMaxOccurrence;
      auto proc = std::make_unique<PathsFinderProcess>(tree, euler, n, t, p,
                                                       inputs[p], opts);
      procs[p] = proc.get();
      engine.set_process(p, std::move(proc));
    }
    engine.run(static_cast<Round>(
        paths_finder_config(tree, n, t, {}).rounds()));

    std::vector<std::vector<VertexId>> paths;
    for (PartyId p = 0; p < n; ++p) {
      ASSERT_TRUE(procs[p]->path().has_value());
      paths.push_back(*procs[p]->path());
    }
    expect_lemma4(tree, inputs, paths);
  }
}

struct SweepParam {
  TreeFamily family;
  std::uint64_t seed;
};

class PathsFinderSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PathsFinderSweep, Lemma4UnderAdversaries) {
  const auto [family, seed] = GetParam();
  Rng rng(seed);
  const auto tree = make_family_tree(family, 10 + rng.index(120), rng);
  const std::size_t n = 4 + rng.index(10);
  const std::size_t t = (n - 1) / 3;
  const auto inputs = harness::random_vertex_inputs(tree, n, rng);
  const auto victims = sim::random_parties(n, t, rng);

  std::unique_ptr<sim::Adversary> adv;
  switch (seed % 3) {
    case 0:
      adv = std::make_unique<sim::SilentAdversary>(victims);
      break;
    case 1:
      adv = std::make_unique<sim::FuzzAdversary>(victims, seed, 16, 32);
      break;
    default: {
      realaa::SplitAdversary::Options opts;
      opts.config = paths_finder_config(tree, n, t, {});
      opts.corrupt = victims;
      adv = std::make_unique<realaa::SplitAdversary>(std::move(opts));
      break;
    }
  }
  auto run = harness::run_paths_finder(tree, n, t, inputs, std::move(adv));

  std::vector<VertexId> honest_inputs;
  for (PartyId p = 0; p < n; ++p) {
    if (std::find(run.corrupt.begin(), run.corrupt.end(), p) ==
        run.corrupt.end()) {
      honest_inputs.push_back(inputs[p]);
    }
  }
  expect_lemma4(tree, honest_inputs, run.honest_paths());
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> params;
  std::uint64_t seed = 1;
  for (const TreeFamily f : all_tree_families()) {
    for (int i = 0; i < 4; ++i) params.push_back({f, seed++});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Families, PathsFinderSweep,
                         ::testing::ValuesIn(sweep_params()));

}  // namespace
}  // namespace treeaa::core
