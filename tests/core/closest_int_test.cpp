// closestInt: the exact rounding rule of §4, plus Remarks 1 and 2.
#include "core/closest_int.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace treeaa {
namespace {

TEST(ClosestInt, BasicRounding) {
  EXPECT_EQ(closest_int(3.0), 3);
  EXPECT_EQ(closest_int(3.4), 3);
  EXPECT_EQ(closest_int(3.6), 4);
  EXPECT_EQ(closest_int(-2.4), -2);
  EXPECT_EQ(closest_int(-2.6), -3);
  EXPECT_EQ(closest_int(0.0), 0);
}

TEST(ClosestInt, TiesRoundUpPerPaperDefinition) {
  // j - z < (z+1) - j fails at j = z + 0.5, so ties go to z + 1.
  EXPECT_EQ(closest_int(3.5), 4);
  EXPECT_EQ(closest_int(0.5), 1);
  EXPECT_EQ(closest_int(-0.5), 0);
  EXPECT_EQ(closest_int(-3.5), -3);
}

TEST(ClosestInt, Remark1StaysWithinIntegerBounds) {
  // If j in [i_min, i_max] (integers), closestInt(j) in [i_min, i_max].
  Rng rng(1);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::int64_t lo = static_cast<std::int64_t>(rng.uniform(0, 100)) - 50;
    const std::int64_t hi = lo + static_cast<std::int64_t>(rng.uniform(0, 60));
    const double j = static_cast<double>(lo) +
                     rng.unit() * static_cast<double>(hi - lo);
    const std::int64_t r = closest_int(j);
    EXPECT_GE(r, lo) << j;
    EXPECT_LE(r, hi) << j;
  }
  // Endpoints exactly.
  EXPECT_EQ(closest_int(7.0), 7);
  EXPECT_EQ(closest_int(-7.0), -7);
}

TEST(ClosestInt, Remark2OneCloseRealsMapToOneCloseInts) {
  Rng rng(2);
  for (int trial = 0; trial < 5000; ++trial) {
    const double j = rng.unit() * 200 - 100;
    const double jp = j + rng.unit();  // |j - jp| <= 1
    const std::int64_t a = closest_int(j);
    const std::int64_t b = closest_int(jp);
    EXPECT_LE(std::abs(a - b), 1) << j << " vs " << jp;
  }
  // The adversarial boundary case from the proof of Remark 2.
  EXPECT_LE(std::abs(closest_int(2.4999999) - closest_int(3.4999999)), 1);
  EXPECT_LE(std::abs(closest_int(2.5) - closest_int(3.5)), 1);
}

}  // namespace
}  // namespace treeaa
