// TreeAA (Theorem 4): Termination within the computed round budget,
// Validity and 1-Agreement across tree families, sizes, resiliences and the
// full adversary zoo — including split attacks aimed at each phase.
#include "core/tree_aa.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/api.h"
#include "harness/runner.h"
#include "realaa/adversaries.h"
#include "realaa/rounds.h"
#include "sim/engine.h"
#include "sim/strategies.h"
#include "trees/generators.h"

namespace treeaa::core {
namespace {

std::vector<VertexId> honest_inputs_of(const RunResult& run,
                                       const std::vector<VertexId>& inputs) {
  std::vector<VertexId> honest;
  for (PartyId p = 0; p < inputs.size(); ++p) {
    if (std::find(run.corrupt.begin(), run.corrupt.end(), p) ==
        run.corrupt.end()) {
      honest.push_back(inputs[p]);
    }
  }
  return honest;
}

TEST(TreeAA, HonestRunOnFigure3) {
  const auto tree = make_figure3_tree();
  const std::vector<VertexId> inputs{*tree.find("v3"), *tree.find("v6"),
                                     *tree.find("v5"), *tree.find("v7")};
  const auto run = run_tree_aa(tree, inputs, 1);
  const auto check =
      check_agreement(tree, inputs, run.honest_outputs());
  EXPECT_TRUE(check.ok()) << "max distance " << check.max_pairwise_distance;
  EXPECT_EQ(run.rounds, tree_aa_rounds(tree, 4, 1));
}

TEST(TreeAA, SingleVertexTreeIsTrivial) {
  const auto tree = LabeledTree::single("r");
  const auto run = run_tree_aa(tree, {0, 0, 0, 0}, 1);
  EXPECT_EQ(run.rounds, 0u);
  for (const VertexId v : run.honest_outputs()) EXPECT_EQ(v, 0u);
}

TEST(TreeAA, TwoVertexTreeOutputsAreOneClose) {
  const auto tree = make_path(2);
  const std::vector<VertexId> inputs{0, 1, 0, 1};
  const auto run = run_tree_aa(tree, inputs, 1);
  const auto check = check_agreement(tree, inputs, run.honest_outputs());
  EXPECT_TRUE(check.ok());
}

TEST(TreeAA, IdenticalInputsStayPut) {
  Rng rng(8);
  const auto tree = make_random_tree(50, rng);
  const auto v = static_cast<VertexId>(rng.index(tree.n()));
  const std::vector<VertexId> inputs(7, v);
  const auto run = run_tree_aa(tree, inputs, 2);
  // Hull of identical inputs is {v}: Validity forces the exact vertex.
  for (const VertexId out : run.honest_outputs()) EXPECT_EQ(out, v);
}

TEST(TreeAA, RejectsBadArguments) {
  const auto tree = make_path(5);
  EXPECT_THROW((void)run_tree_aa(tree, {0, 1, 2}, 1),
               std::invalid_argument);  // n = 3 = 3t
  EXPECT_THROW((void)run_tree_aa(tree, {0, 1, 99, 2}, 1),
               std::invalid_argument);  // bogus vertex
}

TEST(TreeAA, RoundBudgetIsSumOfPhases) {
  Rng rng(4);
  const auto tree = make_random_tree(300, rng);
  const std::size_t n = 10, t = 3;
  const auto r1 = paths_finder_config(tree, n, t, {}).rounds();
  const auto r2 = projection_config(tree, n, t, {}).rounds();
  EXPECT_EQ(tree_aa_rounds(tree, n, t), r1 + r2);
  const auto inputs = harness::spread_vertex_inputs(tree, n);
  const auto run = run_tree_aa(tree, inputs, t);
  EXPECT_EQ(run.rounds, r1 + r2);
}

TEST(TreeAA, RoundComplexityMatchesTheorem4Shape) {
  // Rounds grow like log|V| / log log|V|: check against the explicit
  // closed-form budget 2 * theorem3_round_bound(2|V|, 1), a generous
  // constant-factor envelope of the Theorem 4 statement.
  Rng rng(10);
  for (std::size_t size : {10u, 100u, 1000u, 10000u}) {
    const auto tree = make_random_tree(size, rng);
    const std::size_t rounds = tree_aa_rounds(tree, 16, 5);
    EXPECT_LE(rounds, 2 * realaa::theorem3_round_bound(
                              static_cast<double>(2 * size), 1.0))
        << "|V| = " << size;
  }
}

// --- Line 6 / Figure 5 output rule -------------------------------------------

TEST(ResolveOutputVertex, MapsIndicesOntoThePath) {
  const std::vector<VertexId> path{10, 11, 12, 13};
  EXPECT_EQ(resolve_output_vertex(path, 1.0), 10u);
  EXPECT_EQ(resolve_output_vertex(path, 2.4), 11u);
  EXPECT_EQ(resolve_output_vertex(path, 2.5), 12u);  // tie rounds up
  EXPECT_EQ(resolve_output_vertex(path, 4.0), 13u);
}

TEST(ResolveOutputVertex, Figure5ClampToLastVertex) {
  // closestInt(j) = k + 1: the shorter-path party cannot name v_{k+1}
  // uniquely, so it outputs v_k.
  const std::vector<VertexId> path{10, 11, 12, 13};
  EXPECT_EQ(resolve_output_vertex(path, 4.6), 13u);   // closestInt = 5 > 4
  EXPECT_EQ(resolve_output_vertex(path, 5.0), 13u);
  EXPECT_EQ(resolve_output_vertex(path, 4.49), 13u);  // closestInt = 4
}

TEST(ResolveOutputVertex, RejectsDegenerateInputs) {
  const std::vector<VertexId> path{10};
  EXPECT_EQ(resolve_output_vertex(path, 1.0), 10u);
  EXPECT_THROW((void)resolve_output_vertex({}, 1.0), std::invalid_argument);
  EXPECT_THROW((void)resolve_output_vertex(path, 0.2), InternalError);
}

// --- Adversarial sweeps ------------------------------------------------------

struct SweepParam {
  TreeFamily family;
  std::size_t n;
  std::uint64_t seed;
  // 0 silent, 1 fuzz, 2 split@phase1, 3 split@phase2, 4 crash, 5 replay
  int adversary;
};

class TreeAASweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(TreeAASweep, AAHoldsUnderAdversaries) {
  const auto [family, n, seed, adversary] = GetParam();
  Rng rng(seed);
  const auto tree = make_family_tree(family, 8 + rng.index(100), rng);
  const std::size_t t = (n - 1) / 3;
  const auto inputs = harness::random_vertex_inputs(tree, n, rng);
  const auto victims = sim::random_parties(n, t, rng);

  std::unique_ptr<sim::Adversary> adv;
  switch (adversary) {
    case 0:
      adv = std::make_unique<sim::SilentAdversary>(victims);
      break;
    case 1:
      adv = std::make_unique<sim::FuzzAdversary>(victims, seed, 16, 48);
      break;
    case 2: {  // split attack on the PathsFinder phase
      realaa::SplitAdversary::Options opts;
      opts.config = paths_finder_config(tree, n, t, {});
      opts.corrupt = victims;
      adv = std::make_unique<realaa::SplitAdversary>(std::move(opts));
      break;
    }
    case 3: {  // split attack on the projection phase
      realaa::SplitAdversary::Options opts;
      opts.config = projection_config(tree, n, t, {});
      opts.corrupt = victims;
      opts.start_round = static_cast<Round>(
          paths_finder_config(tree, n, t, {}).rounds() + 1);
      adv = std::make_unique<realaa::SplitAdversary>(std::move(opts));
      break;
    }
    case 4: {
      std::vector<sim::CrashAdversary::Crash> crashes;
      Round when = 1;
      for (const PartyId v : victims) {
        crashes.push_back({v, when, 0.5});
        when += 2;
      }
      adv = std::make_unique<sim::CrashAdversary>(std::move(crashes));
      break;
    }
    default:
      adv = std::make_unique<sim::ReplayAdversary>(victims, seed, 20);
      break;
  }

  const auto run = run_tree_aa(tree, inputs, t, {}, std::move(adv));
  const auto honest = honest_inputs_of(run, inputs);
  const auto check = check_agreement(tree, honest, run.honest_outputs());
  EXPECT_TRUE(check.valid)
      << tree_family_name(family) << " n=" << n << " seed=" << seed
      << " adv=" << adversary;
  EXPECT_TRUE(check.one_agreement)
      << tree_family_name(family) << " n=" << n << " seed=" << seed
      << " adv=" << adversary << " max d=" << check.max_pairwise_distance;
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> params;
  std::uint64_t seed = 100;
  for (const TreeFamily f : all_tree_families()) {
    for (const std::size_t n : {4u, 7u, 13u}) {
      for (int adv = 0; adv <= 5; ++adv) {
        params.push_back({f, n, seed++, adv});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(FamiliesByAdversary, TreeAASweep,
                         ::testing::ValuesIn(sweep_params()));

// --- Update-rule / iteration-mode ablations stay correct ---------------------

class TreeAAOptionsSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TreeAAOptionsSweep, AAHoldsForEveryConfiguration) {
  const auto [update, mode] = GetParam();
  TreeAAOptions opts;
  opts.update = static_cast<realaa::UpdateRule>(update);
  opts.mode = static_cast<realaa::IterationMode>(mode);
  Rng rng(42 + static_cast<std::uint64_t>(update * 2 + mode));
  const auto tree = make_random_tree(80, rng);
  const std::size_t n = 10, t = 3;
  const auto inputs = harness::random_vertex_inputs(tree, n, rng);
  realaa::SplitAdversary::Options aopts;
  aopts.config = paths_finder_config(tree, n, t,
                                     {opts.update, opts.mode});
  aopts.corrupt = {7, 8, 9};
  const auto run =
      run_tree_aa(tree, inputs, t, opts,
                  std::make_unique<realaa::SplitAdversary>(std::move(aopts)));
  const auto honest = honest_inputs_of(run, inputs);
  const auto check = check_agreement(tree, honest, run.honest_outputs());
  EXPECT_TRUE(check.ok()) << "update=" << update << " mode=" << mode
                          << " max d=" << check.max_pairwise_distance;
}

INSTANTIATE_TEST_SUITE_P(Options, TreeAAOptionsSweep,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Values(0, 1)));

TEST(TreeAA, SplitRichRegimeEndToEnd) {
  // t >= R with one equivocator per iteration in BOTH phases: the only
  // regime where PathsFinder can genuinely split honest paths (see
  // docs/ADVERSARIES.md), i.e. where the Figure-5 machinery is live in the
  // full protocol. AA must hold across many seeds.
  const std::size_t n = 22, t = 7;
  std::size_t splits_seen = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed * 1009);
    const auto tree = make_random_tree(40 + rng.index(200), rng);
    const auto inputs = harness::spread_vertex_inputs(tree, n);

    realaa::SplitAdversary::Options phase1;
    phase1.config = paths_finder_config(tree, n, t, {});
    for (std::size_t i = 0; i < t; ++i) {
      phase1.corrupt.push_back(static_cast<PartyId>(n - 1 - i));
    }
    phase1.schedule.assign(phase1.config.iterations(), 1);

    const auto run = run_tree_aa(
        tree, inputs, t, {},
        std::make_unique<realaa::SplitAdversary>(std::move(phase1)));
    if (run.path_split) ++splits_seen;

    std::vector<VertexId> honest(inputs.begin(),
                                 inputs.begin() + static_cast<long>(n - t));
    const auto check = check_agreement(tree, honest, run.honest_outputs());
    ASSERT_TRUE(check.ok()) << "seed " << seed << " split="
                            << run.path_split << " max d "
                            << check.max_pairwise_distance;
  }
  // Splits are rare (they need the final RealAA values to straddle a
  // half-integer), so no hard assertion on splits_seen — but telemetry
  // proves the counter is wired when one occurs.
  (void)splits_seen;
}

TEST(TreeAA, LargeScaleSmoke) {
  // 50k-vertex tree, spread inputs: rounds stay in the log/loglog regime
  // and the guarantees hold end to end.
  Rng rng(50);
  const auto tree = make_random_chainy_tree(50000, rng, 0.7);
  const std::size_t n = 7, t = 2;
  const auto inputs = harness::spread_vertex_inputs(tree, n);
  const auto run = run_tree_aa(tree, inputs, t);
  EXPECT_LE(run.rounds, 60u);
  EXPECT_TRUE(check_agreement(tree, inputs, run.honest_outputs()).ok());
}

// --- Telemetry ----------------------------------------------------------------

TEST(TreeAATelemetry, HonestRunIsCleanAndConsistent) {
  Rng rng(21);
  const auto tree = make_random_tree(60, rng);
  const std::size_t n = 7, t = 2;
  const auto inputs = harness::random_vertex_inputs(tree, n, rng);
  const auto run = run_tree_aa(tree, inputs, t);
  EXPECT_FALSE(run.path_split);
  EXPECT_EQ(run.clamp_count, 0u);
  EXPECT_EQ(run.max_detected_faulty, 0u);
}

TEST(TreeAATelemetry, SplitAdversaryGetsDetected) {
  Rng rng(22);
  const auto tree = make_random_tree(60, rng);
  const std::size_t n = 10, t = 3;
  const auto inputs = harness::random_vertex_inputs(tree, n, rng);
  realaa::SplitAdversary::Options opts;
  opts.config = projection_config(tree, n, t, {});
  opts.corrupt = {7, 8, 9};
  opts.start_round =
      static_cast<Round>(paths_finder_config(tree, n, t, {}).rounds() + 1);
  const auto run =
      run_tree_aa(tree, inputs, t, {},
                  std::make_unique<realaa::SplitAdversary>(std::move(opts)));
  // Every equivocator that fired in phase 2 is proven Byzantine at every
  // honest party; the default schedule spends the whole pool.
  EXPECT_GE(run.max_detected_faulty, 1u);
  EXPECT_LE(run.max_detected_faulty, t);
}

TEST(TreeAATelemetry, PerPartyFieldsAreFilled) {
  const auto tree = make_path(50);
  const EulerList euler(tree);
  const std::size_t n = 4, t = 1;
  sim::Engine engine(n, t);
  std::vector<TreeAAProcess*> procs(n);
  for (PartyId p = 0; p < n; ++p) {
    auto proc = std::make_unique<TreeAAProcess>(tree, euler, n, t, p,
                                                static_cast<VertexId>(p));
    procs[p] = proc.get();
    engine.set_process(p, std::move(proc));
  }
  engine.run(static_cast<Round>(tree_aa_rounds(tree, n, t)));
  for (PartyId p = 0; p < n; ++p) {
    const auto telemetry = procs[p]->telemetry();
    EXPECT_EQ(telemetry.phase1_rounds + telemetry.phase2_rounds,
              procs[p]->rounds());
    EXPECT_GE(telemetry.path_length, 1u);
    EXPECT_FALSE(telemetry.clamped);
  }
}

// --- Engine independence (paper §7 note) -------------------------------------

TEST(TreeAAEngine, ClassicHalvingEngineStillAchievesAA) {
  TreeAAOptions opts;
  opts.engine = RealEngineKind::kClassicHalving;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const auto tree = make_random_tree(10 + rng.index(100), rng);
    const std::size_t n = 10, t = 3;
    const auto inputs = harness::random_vertex_inputs(tree, n, rng);
    const auto victims = sim::random_parties(n, t, rng);
    std::unique_ptr<sim::Adversary> adv;
    if (seed % 2 == 0) {
      adv = std::make_unique<sim::FuzzAdversary>(victims, seed, 16, 48);
    } else {
      adv = std::make_unique<sim::SilentAdversary>(victims);
    }
    const auto run = run_tree_aa(tree, inputs, t, opts, std::move(adv));
    const auto honest = honest_inputs_of(run, inputs);
    const auto check = check_agreement(tree, honest, run.honest_outputs());
    EXPECT_TRUE(check.ok()) << "seed " << seed << " max d "
                            << check.max_pairwise_distance;
  }
}

TEST(TreeAAEngine, ClassicEngineNeedsMoreRoundsOnDeepTrees) {
  const auto tree = make_path(5000);
  TreeAAOptions fast;  // default BDH engine
  TreeAAOptions slow;
  slow.engine = RealEngineKind::kClassicHalving;
  EXPECT_LT(tree_aa_rounds(tree, 7, 2, fast),
            tree_aa_rounds(tree, 7, 2, slow));
}

TEST(TreeAAEngine, EngineRoundsMatchUnderlyingConfigs) {
  const auto tree = make_path(200);
  TreeAAOptions slow;
  slow.engine = RealEngineKind::kClassicHalving;
  const baselines::IteratedRealConfig phase1{7, 2, 1.0,
                                             static_cast<double>(
                                                 2 * tree.n() - 2)};
  const baselines::IteratedRealConfig phase2{
      7, 2, 1.0, static_cast<double>(tree.diameter())};
  EXPECT_EQ(tree_aa_rounds(tree, 7, 2, slow),
            phase1.rounds() + phase2.rounds());
}

TEST(RealEngineFactory, NamesAndRounds) {
  EXPECT_STREQ(real_engine_name(RealEngineKind::kGradecastBdh),
               "gradecast-bdh");
  EXPECT_STREQ(real_engine_name(RealEngineKind::kClassicHalving),
               "classic-halving");
  RealEngineConfig cfg;
  const auto engine = make_real_engine(cfg, 7, 2, 100.0, 1.0, 3, 42.0);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->rounds(), real_engine_rounds(cfg, 7, 2, 100.0, 1.0));
  EXPECT_FALSE(engine->output().has_value());
}

}  // namespace
}  // namespace treeaa::core
