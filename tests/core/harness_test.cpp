// The experiment harness itself: input generators and runner plumbing.
#include "harness/runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "trees/generators.h"

namespace treeaa::harness {
namespace {

TEST(Generators, SpreadVertexInputsAlternateDiameterEndpoints) {
  const auto tree = make_path(10);
  const auto inputs = spread_vertex_inputs(tree, 5);
  const auto [a, b] = tree.diameter_endpoints();
  ASSERT_EQ(inputs.size(), 5u);
  EXPECT_EQ(inputs[0], a);
  EXPECT_EQ(inputs[1], b);
  EXPECT_EQ(inputs[2], a);
  EXPECT_EQ(tree.distance(inputs[0], inputs[1]), tree.diameter());
}

TEST(Generators, RandomVertexInputsAreValidVertices) {
  Rng rng(3);
  const auto tree = make_star(12);
  const auto inputs = random_vertex_inputs(tree, 50, rng);
  for (const VertexId v : inputs) EXPECT_LT(v, tree.n());
  // Not all identical (star has 12 vertices, 50 draws).
  EXPECT_GT(std::set<VertexId>(inputs.begin(), inputs.end()).size(), 1u);
}

TEST(Generators, SpreadRealInputsAlternate) {
  const auto inputs = spread_real_inputs(4, -5.0, 5.0);
  EXPECT_EQ(inputs, (std::vector<double>{-5, 5, -5, 5}));
}

TEST(Generators, RandomRealInputsInRange) {
  Rng rng(9);
  for (const double v : random_real_inputs(100, 2.0, 3.0, rng)) {
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Runner, RejectsInputArityMismatch) {
  realaa::Config cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.eps = 1.0;
  cfg.known_range = 10.0;
  EXPECT_THROW((void)run_real_aa(cfg, {1.0, 2.0}), std::invalid_argument);
  const auto tree = make_path(4);
  EXPECT_THROW((void)run_paths_finder(tree, 4, 1, {0, 1}),
               std::invalid_argument);
}

TEST(Runner, RealRunAccessors) {
  realaa::Config cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.eps = 1.0;
  cfg.known_range = 8.0;
  const auto run = run_real_aa(cfg, {0.0, 8.0, 2.0, 6.0});
  EXPECT_EQ(run.honest_outputs().size(), 4u);
  EXPECT_GE(run.output_range(), 0.0);
  EXPECT_EQ(run.histories.size(), 4u);
  EXPECT_TRUE(run.corrupt.empty());
}

}  // namespace
}  // namespace treeaa::harness
