// The high-level API: run_tree_aa plumbing and check_agreement semantics.
#include "core/api.h"

#include <gtest/gtest.h>

#include "sim/engine.h"
#include "sim/strategies.h"
#include "sim/trace.h"
#include "trees/euler.h"
#include "trees/generators.h"

namespace treeaa::core {
namespace {

TEST(CheckAgreement, AcceptsExactAgreementOnHullVertex) {
  const auto tree = make_path(5);
  const auto check = check_agreement(tree, {0, 4}, {2, 2, 2});
  EXPECT_TRUE(check.valid);
  EXPECT_TRUE(check.one_agreement);
  EXPECT_EQ(check.max_pairwise_distance, 0u);
  EXPECT_TRUE(check.ok());
}

TEST(CheckAgreement, AcceptsAdjacentOutputs) {
  const auto tree = make_path(5);
  const auto check = check_agreement(tree, {0, 4}, {2, 3});
  EXPECT_TRUE(check.ok());
  EXPECT_EQ(check.max_pairwise_distance, 1u);
}

TEST(CheckAgreement, RejectsOutputOutsideHull) {
  const auto tree = make_star(5);
  // Hull of two leaves is {leaf, center, leaf}; another leaf is outside.
  const auto check = check_agreement(tree, {1, 2}, {3});
  EXPECT_FALSE(check.valid);
}

TEST(CheckAgreement, RejectsFarOutputs) {
  const auto tree = make_path(6);
  const auto check = check_agreement(tree, {0, 5}, {1, 4});
  EXPECT_TRUE(check.valid);
  EXPECT_FALSE(check.one_agreement);
  EXPECT_EQ(check.max_pairwise_distance, 3u);
  EXPECT_FALSE(check.ok());
}

TEST(CheckAgreement, RequiresNonEmptySets) {
  const auto tree = make_path(3);
  EXPECT_THROW((void)check_agreement(tree, {}, {0}), std::invalid_argument);
  EXPECT_THROW((void)check_agreement(tree, {0}, {}), std::invalid_argument);
}

TEST(RunTreeAA, ReportsCorruptPartiesAndSkipsTheirOutputs) {
  const auto tree = make_path(20);
  const std::vector<VertexId> inputs{0, 19, 5, 10, 3, 16, 8};
  auto adv =
      std::make_unique<sim::SilentAdversary>(std::vector<PartyId>{1, 4});
  const auto run = run_tree_aa(tree, inputs, 2, {}, std::move(adv));
  EXPECT_EQ(run.corrupt, (std::vector<PartyId>{1, 4}));
  EXPECT_FALSE(run.outputs[1].has_value());
  EXPECT_FALSE(run.outputs[4].has_value());
  EXPECT_EQ(run.honest_outputs().size(), 5u);
}

TEST(RunTreeAA, TracksTraffic) {
  const auto tree = make_path(30);
  const std::vector<VertexId> inputs{0, 29, 10, 20};
  const auto run = run_tree_aa(tree, inputs, 1);
  EXPECT_GT(run.traffic.total_messages(), 0u);
  EXPECT_EQ(run.traffic.per_round.size(), run.rounds);
  EXPECT_EQ(run.traffic.total_messages(), run.traffic.honest_messages());
}

TEST(RunTreeAA, TranscriptLevelDeterminism) {
  // Stronger than output determinism: the full message transcript of a
  // TreeAA run (every byte of every message, in order) must repeat exactly.
  auto transcript = [] {
    Rng rng(77);
    const auto tree = make_random_tree(30, rng);
    const EulerList euler(tree);
    const std::size_t n = 4, t = 1;
    sim::Engine engine(n, t);
    for (PartyId p = 0; p < n; ++p) {
      engine.set_process(p, std::make_unique<TreeAAProcess>(
                                tree, euler, n, t, p,
                                static_cast<VertexId>(p * 7 % tree.n())));
    }
    sim::RecordingTracer tracer(/*payloads=*/true);
    engine.set_tracer(&tracer);
    engine.run(static_cast<Round>(tree_aa_rounds(tree, n, t)));
    return tracer.text();
  };
  const auto a = transcript();
  EXPECT_EQ(a, transcript());
  EXPECT_GT(a.size(), 1000u);
}

TEST(RunTreeAA, DeterministicForFixedInputs) {
  Rng rng(55);
  const auto tree = make_random_tree(40, rng);
  const std::vector<VertexId> inputs{3, 17, 9, 22, 9, 30, 2};
  const auto a = run_tree_aa(tree, inputs, 2);
  const auto b = run_tree_aa(tree, inputs, 2);
  EXPECT_EQ(a.honest_outputs(), b.honest_outputs());
  EXPECT_EQ(a.rounds, b.rounds);
}

}  // namespace
}  // namespace treeaa::core
