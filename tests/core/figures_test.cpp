// The paper's worked figures as executable scenarios.
//
// Figure 1 (hull) and Figures 3/4 (Euler list) are covered in the trees
// tests; here Figure 4's PathsFinder consequences and Figure 5's
// ambiguous-last-vertex scenario are exercised end to end.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/api.h"
#include "core/paths_finder.h"
#include "harness/runner.h"
#include "realaa/adversaries.h"
#include "trees/generators.h"
#include "trees/paths.h"

namespace treeaa::core {
namespace {

// Figure 4: honest inputs v3, v6, v5 on the Figure 3 tree. The paper notes
// that RealAA may legitimately land on indices of v4 or v8 — vertices
// *outside* the hull {v5, v2, v3, v6} but inside the subtree of the valid
// vertex v2 — and that the root path then still intersects the hull.
TEST(Figure4, RootPathsThroughV4AndV8IntersectTheHonestHull) {
  const auto tree = make_figure3_tree();
  const std::vector<VertexId> honest{*tree.find("v3"), *tree.find("v6"),
                                     *tree.find("v5")};
  for (const char* outside : {"v4", "v8"}) {
    const VertexId v = *tree.find(outside);
    EXPECT_FALSE(in_hull(tree, honest, v));
    const auto path = tree.path(tree.root(), v);
    const bool intersects =
        std::any_of(path.begin(), path.end(),
                    [&](VertexId w) { return in_hull(tree, honest, w); });
    EXPECT_TRUE(intersects) << outside;
  }
}

// Figure 4 again, via the protocol itself: every index between the extreme
// honest Euler indices yields a root path through the hull (Lemma 3).
TEST(Figure4, Lemma3HoldsForEveryIndexInTheHonestWindow) {
  const auto tree = make_figure3_tree();
  const EulerList L(tree);
  const std::vector<VertexId> honest{*tree.find("v3"), *tree.find("v6"),
                                     *tree.find("v5")};
  std::size_t lo = L.size(), hi = 1;
  for (const VertexId v : honest) {
    lo = std::min(lo, L.first_occurrence(v));
    hi = std::max(hi, L.last_occurrence(v));
  }
  EXPECT_EQ(lo, 3u);   // min L(v3)
  EXPECT_EQ(hi, 13u);  // L(v5)
  for (std::size_t i = lo; i <= hi; ++i) {
    const auto path = tree.path(tree.root(), L.at(i));
    const bool intersects =
        std::any_of(path.begin(), path.end(),
                    [&](VertexId w) { return in_hull(tree, honest, w); });
    EXPECT_TRUE(intersects) << "index " << i;
  }
}

// Figure 5's topology: a spine v1..v7 where v6 also has a second child (the
// "red vertex") outside the honest hull. A party holding the shorter path
// (v1..v6) that obtains closestInt(j) = 7 cannot know whether position 7
// means v7 or the red vertex; TreeAA outputs v6 instead. We run the
// scenario under phase-2 split attacks and check the outputs never land on
// the red vertex and always satisfy AA.
TEST(Figure5, ShorterPathPartyNeverGuessesTheRedVertex) {
  // Labels chosen so the red vertex sorts after v7 (label "v8red" > "v7").
  const auto tree = LabeledTree::from_edges(
      {{"v1", "v2"}, {"v2", "v3"}, {"v3", "v4"}, {"v4", "v5"},
       {"v5", "v6"}, {"v6", "v7"}, {"v6", "v8red"},
       {"v3", "u1"}, {"v5", "u2"}, {"v7", "u3"}});
  const VertexId red = *tree.find("v8red");
  const std::vector<VertexId> honest_positions{
      *tree.find("u1"), *tree.find("u2"), *tree.find("u3")};

  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::size_t n = 7, t = 2;
    Rng rng(seed);
    std::vector<VertexId> inputs(n);
    for (auto& v : inputs) v = rng.pick(honest_positions);

    realaa::SplitAdversary::Options opts;
    opts.config = projection_config(tree, n, t, {});
    opts.corrupt = {5, 6};
    opts.start_round =
        static_cast<Round>(paths_finder_config(tree, n, t, {}).rounds() + 1);
    const auto run = run_tree_aa(
        tree, inputs, t, {},
        std::make_unique<realaa::SplitAdversary>(std::move(opts)));

    std::vector<VertexId> honest_inputs;
    for (PartyId p = 0; p < n; ++p) {
      if (std::find(run.corrupt.begin(), run.corrupt.end(), p) ==
          run.corrupt.end()) {
        honest_inputs.push_back(inputs[p]);
      }
    }
    const auto check =
        check_agreement(tree, honest_inputs, run.honest_outputs());
    EXPECT_TRUE(check.ok()) << "seed " << seed;
    for (const VertexId out : run.honest_outputs()) {
      EXPECT_NE(out, red) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace treeaa::core
