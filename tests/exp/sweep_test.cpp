// End-to-end sweep engine: cell determinism, error placement, tree sharing,
// and the headline guarantee — byte-identical reports at any thread count.
#include "exp/sweep.h"

#include <gtest/gtest.h>

#include <string>

#include "exp/report.h"
#include "exp/spec.h"

namespace treeaa::exp {
namespace {

// 64 cells mixing both value domains, every applicable adversary, and a
// repeat axis — small trees so the whole sweep stays fast under ctest.
constexpr const char* kMixedSpec = R"({
  "name": "mixed",
  "seed": 2024,
  "repeats": 2,
  "scenarios": [
    {"protocols": ["tree_aa", "iterated_tree_aa"],
     "tree": {"families": ["path", "random"], "sizes": [12, 24]},
     "n": [7],
     "adversaries": ["none", "silent", "fuzz"],
     "inputs": "random"},
    {"protocols": ["real_aa", "iterated_real_aa"],
     "range": [1024, 65536],
     "n": [7],
     "adversaries": ["none", "silent"]}
  ]
})";

TEST(Sweep, MixedSpecHas64Cells) {
  const SweepSpec spec = spec_from_json(kMixedSpec);
  // Scenario 1: 2 protocols x 2 families x 2 sizes x 3 adversaries x 2
  // repeats = 48; scenario 2: 2 protocols x 2 ranges x 2 adversaries x 2
  // repeats = 16.
  EXPECT_EQ(expand(spec).size(), 48u + 16u);
}

TEST(Sweep, ReportIsByteIdenticalAcrossThreadCounts) {
  // The subsystem's core promise: per-cell RNG is a pure function of
  // (spec.seed, cell.index), workers write only their own slots, and the
  // report serializes in cell order — so 1, 2, and 8 threads must produce
  // the same bytes.
  const SweepSpec spec = spec_from_json(kMixedSpec);
  auto render = [&](std::size_t threads) {
    const SweepResult result = run_sweep(spec, SweepOptions{.threads = threads});
    return sweep_report_json(spec, result);
  };
  const std::string base = render(1);
  EXPECT_NE(base.find(kSweepReportSchema), std::string::npos);
  EXPECT_EQ(render(2), base);
  EXPECT_EQ(render(8), base);
}

TEST(Sweep, RunCellIsDeterministic) {
  const SweepSpec spec = spec_from_json(kMixedSpec);
  const std::vector<Cell> cells = expand(spec);
  for (const std::size_t index : {0u, 17u, 60u}) {
    const CellResult a = run_cell(spec, cells[index]);
    const CellResult b = run_cell(spec, cells[index]);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.spread, b.spread);
    EXPECT_EQ(a.honest_messages, b.honest_messages);
    EXPECT_EQ(a.honest_bytes, b.honest_bytes);
  }
}

TEST(Sweep, RepeatsDifferWithoutSharedTreeSeed) {
  // No tree_seed in kMixedSpec: the two repeats of a random-family cell grow
  // different trees (and draw different inputs) from their own forked
  // streams. Indices 12/13 are the random/size-12/none repeat pair.
  const SweepSpec spec = spec_from_json(kMixedSpec);
  const std::vector<Cell> cells = expand(spec);
  ASSERT_EQ(cells[12].family, "random");
  ASSERT_EQ(cells[12].repeat, 0u);
  ASSERT_EQ(cells[13].repeat, 1u);
  const CellResult r0 = run_cell(spec, cells[12]);
  const CellResult r1 = run_cell(spec, cells[13]);
  EXPECT_TRUE(r0.ok);
  EXPECT_TRUE(r1.ok);
  EXPECT_EQ(r0.tree_n, r1.tree_n);
  // Not the same instance/run: at least one observable differs (deterministic
  // given the pinned seed 2024).
  EXPECT_TRUE(r0.tree_diameter != r1.tree_diameter ||
              r0.honest_bytes != r1.honest_bytes || r0.spread != r1.spread);
}

TEST(Sweep, SharedTreeSeedPinsTheInstance) {
  const SweepSpec spec = spec_from_json(R"({
    "name": "shared", "seed": 5, "repeats": 2,
    "scenarios": [
      {"protocols": ["tree_aa"],
       "tree": {"families": ["random"], "sizes": [20], "tree_seed": 11},
       "n": [7]}
    ]
  })");
  const std::vector<Cell> cells = expand(spec);
  ASSERT_EQ(cells.size(), 2u);
  const CellResult r0 = run_cell(spec, cells[0]);
  const CellResult r1 = run_cell(spec, cells[1]);
  EXPECT_EQ(r0.tree_diameter, r1.tree_diameter);
}

TEST(Sweep, ErrorCellsLandInTheirOwnSlot) {
  // A throwing cell (unknown family — only reachable with a hand-built work
  // list, spec_from_json rejects it earlier) must surface as ok = false in
  // its own row, with the healthy neighbor unaffected.
  SweepSpec spec;
  spec.name = "err";
  spec.seed = 3;
  Cell bad;
  bad.index = 0;
  bad.protocol = Protocol::kTreeAA;
  bad.family = "bogus";
  bad.tree_size = 16;
  bad.n = 7;
  bad.t = 2;
  Cell good = bad;
  good.index = 1;
  good.family = "path";
  const SweepResult result = run_sweep(spec, {bad, good}, {.threads = 2});
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_FALSE(result.cells[0].ok);
  EXPECT_NE(result.cells[0].error.find("unknown tree family"),
            std::string::npos);
  EXPECT_FALSE(result.cells[0].aa_ok());
  EXPECT_TRUE(result.cells[1].ok);
  EXPECT_TRUE(result.cells[1].aa_ok());
  // The report keeps the error row, flags it, and still renders.
  const std::string json = sweep_report_json(spec, result);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("\"error\":"), std::string::npos);
}

TEST(Sweep, VerdictsHoldOnCleanRuns) {
  const SweepSpec spec = spec_from_json(kMixedSpec);
  const SweepResult result = run_sweep(spec, SweepOptions{.threads = 2});
  for (const CellResult& r : result.cells) {
    ASSERT_TRUE(r.ok) << "cell " << r.cell.index << ": " << r.error;
    EXPECT_TRUE(r.aa_ok()) << "cell " << r.cell.index;
    EXPECT_LE(r.rounds, r.round_budget) << "cell " << r.cell.index;
    EXPECT_GE(r.rounds, 1u);
    if (is_vertex_protocol(r.cell.protocol)) {
      EXPECT_EQ(r.tree_n, r.cell.tree_size);
      EXPECT_GE(r.tree_diameter, 1u);
    }
    EXPECT_GT(r.honest_messages, 0u);
  }
  EXPECT_EQ(result.timings.cells, result.cells.size());
}

TEST(Sweep, TimingSectionIsOptIn) {
  const SweepSpec spec = spec_from_json(R"({
    "name": "tiny",
    "scenarios": [
      {"protocols": ["real_aa"], "range": [64], "n": [7]}
    ]
  })");
  const SweepResult result = run_sweep(spec, SweepOptions{});
  const std::string canonical = sweep_report_json(spec, result);
  EXPECT_EQ(canonical.find("\"timing\""), std::string::npos);
  const std::string timed =
      sweep_report_json(spec, result, {.include_timings = true});
  EXPECT_NE(timed.find("\"timing\""), std::string::npos);
}

TEST(Sweep, RunThreadsNeverChangeReport) {
  // Intra-cell engine lanes (run_threads) compose with the cell scheduler
  // (threads) under a shared budget; every combination — including 0 =
  // hardware — must serialize to the same bytes as the fully serial sweep.
  const SweepSpec spec = spec_from_json(kMixedSpec);
  auto render = [&](const SweepOptions& opts) {
    const SweepResult result = run_sweep(spec, opts);
    return sweep_report_json(spec, result);
  };
  const std::string base = render({.threads = 1});
  EXPECT_EQ(render({.threads = 1, .run_threads = 4}), base);
  EXPECT_EQ(render({.threads = 8, .run_threads = 4}), base);
  EXPECT_EQ(render({.threads = 2, .run_threads = 0}), base);
}

}  // namespace
}  // namespace treeaa::exp
