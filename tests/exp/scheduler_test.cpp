// The chunked atomic work queue: full coverage of the index space at every
// thread count, and exception propagation to the caller.
#include "exp/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace treeaa::exp {
namespace {

TEST(Scheduler, ResolveThreadsClampsToWork) {
  EXPECT_EQ(resolve_threads(100, {.threads = 4}), 4u);
  EXPECT_EQ(resolve_threads(2, {.threads = 8}), 2u);
  EXPECT_EQ(resolve_threads(0, {.threads = 8}), 8u);  // clamp needs work
  EXPECT_GE(resolve_threads(100, {.threads = 0}), 1u);  // hardware default
}

void expect_each_index_once(std::size_t count, const ScheduleOptions& opts) {
  std::vector<std::atomic<int>> hits(count);
  parallel_for(count, opts,
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i << " with "
                                 << opts.threads << " threads";
  }
}

TEST(Scheduler, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 3u, 8u}) {
    expect_each_index_once(97, {.threads = threads});
    expect_each_index_once(97, {.threads = threads, .chunk = 1});
    expect_each_index_once(97, {.threads = threads, .chunk = 64});
  }
  expect_each_index_once(0, {.threads = 4});
  expect_each_index_once(1, {.threads = 4});
}

TEST(Scheduler, SlotWritesComposeDeterministically) {
  // The sweep engine's usage pattern: each unit writes its own slot; the
  // assembled vector must not depend on the thread count.
  auto run = [](std::size_t threads) {
    std::vector<std::size_t> out(257);
    parallel_for(out.size(), {.threads = threads},
                 [&](std::size_t i) { out[i] = i * i + 7; });
    return out;
  };
  const auto base = run(1);
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(8), base);
}

TEST(Scheduler, RethrowsWorkerException) {
  for (const std::size_t threads : {1u, 4u}) {
    EXPECT_THROW(
        parallel_for(64, {.threads = threads},
                     [](std::size_t i) {
                       if (i == 13) throw std::runtime_error("unit 13 failed");
                     }),
        std::runtime_error);
  }
}

TEST(Scheduler, KeepsRunningAfterException) {
  // An exception must not wedge the pool: after the rethrow the scheduler is
  // reusable (threads joined, cursor reset).
  ASSERT_THROW(parallel_for(8, {.threads = 4},
                            [](std::size_t) {
                              throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  expect_each_index_once(32, {.threads = 4});
}

}  // namespace
}  // namespace treeaa::exp
