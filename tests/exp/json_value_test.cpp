// The sweep-spec JSON reader: accepted documents, rejected garbage, and the
// document-order guarantees the spec layer relies on.
#include "exp/json_value.h"

#include <gtest/gtest.h>

namespace treeaa::exp {
namespace {

TEST(JsonValue, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null")->is_null());
  EXPECT_TRUE(JsonValue::parse("true")->as_bool());
  EXPECT_FALSE(JsonValue::parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("3.5")->as_number(), 3.5);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-2e3")->as_number(), -2000.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonValue, ParsesEscapes) {
  const auto v = JsonValue::parse(R"("a\"b\\c\n\tA")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "a\"b\\c\n\tA");
}

TEST(JsonValue, ParsesNestedDocument) {
  const auto v = JsonValue::parse(
      R"({"name":"s","grid":[1,2,3],"inner":{"flag":true,"x":null}})");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->find("name")->as_string(), "s");
  const auto& grid = v->find("grid")->items();
  ASSERT_EQ(grid.size(), 3u);
  EXPECT_DOUBLE_EQ(grid[1].as_number(), 2.0);
  EXPECT_TRUE(v->find("inner")->find("flag")->as_bool());
  EXPECT_TRUE(v->find("inner")->find("x")->is_null());
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(JsonValue, MembersKeepDocumentOrder) {
  const auto v = JsonValue::parse(R"({"z":1,"a":2,"m":3})");
  ASSERT_TRUE(v.has_value());
  const auto& members = v->members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(JsonValue, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonValue::parse("").has_value());
  EXPECT_FALSE(JsonValue::parse("{").has_value());
  EXPECT_FALSE(JsonValue::parse("[1,2,]").has_value());
  EXPECT_FALSE(JsonValue::parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(JsonValue::parse("{'a':1}").has_value());
  EXPECT_FALSE(JsonValue::parse("\"unterminated").has_value());
  EXPECT_FALSE(JsonValue::parse("nul").has_value());
  EXPECT_FALSE(JsonValue::parse("1 2").has_value());  // trailing garbage
  EXPECT_FALSE(JsonValue::parse("{\"a\" 1}").has_value());
}

TEST(JsonValue, RejectsTooDeepNesting) {
  std::string deep;
  for (int i = 0; i < 64; ++i) deep += "[";
  for (int i = 0; i < 64; ++i) deep += "]";
  EXPECT_FALSE(JsonValue::parse(deep).has_value());
}

TEST(JsonValue, RoundTripsSweepSpecShape) {
  const auto v = JsonValue::parse(R"({
    "name": "demo", "seed": 7,
    "scenarios": [
      {"protocols": ["tree_aa"], "tree": {"families": ["path"], "sizes": [20]},
       "n": [7], "t": "max"}
    ]
  })");
  ASSERT_TRUE(v.has_value());
  const auto& scenarios = v->find("scenarios")->items();
  ASSERT_EQ(scenarios.size(), 1u);
  EXPECT_EQ(scenarios[0].find("t")->as_string(), "max");
  EXPECT_DOUBLE_EQ(
      scenarios[0].find("tree")->find("sizes")->items()[0].as_number(), 20.0);
}

}  // namespace
}  // namespace treeaa::exp
