// Convergence ledger: bound helpers, report ingestion, the per-round
// checks, and — critically — the mislabeled-trace oracle: a report whose
// claimed (D, eps, rounds) is infeasible under Fekete's lower bound must
// fail budget_feasible and count a violation.
#include "exp/ledger.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "bounds/fekete.h"
#include "exp/json_value.h"
#include "obs/report.h"

namespace treeaa::exp {
namespace {

LedgerInput real_input() {
  LedgerInput in;
  in.protocol = "real_aa";
  in.n = 16;
  in.t = 5;
  in.d0 = 1e4;
  in.eps = 1.0;
  return in;
}

TEST(WithinFeketeBound, AgreesWithLowerBoundRounds) {
  const std::size_t lb = bounds::lower_bound_rounds(1e4, 16, 5);
  ASSERT_GE(lb, 1u);
  EXPECT_TRUE(within_fekete_bound(1e4, 1.0, 16, 5, lb));
  EXPECT_TRUE(within_fekete_bound(1e4, 1.0, 16, 5, lb + 7));
  EXPECT_FALSE(within_fekete_bound(1e4, 1.0, 16, 5, lb - 1));
}

TEST(WithinFeketeBound, DegenerateInputsAreVacuouslyWithin) {
  EXPECT_TRUE(within_fekete_bound(0.0, 1.0, 16, 5, 0));   // no spread
  EXPECT_TRUE(within_fekete_bound(1e4, 0.0, 16, 5, 0));   // no target
  EXPECT_TRUE(within_fekete_bound(1e4, 1.0, 0, 0, 0));    // no parties
}

TEST(RealaaEnvelope, ZeroIterationsIsTheInitialDiameter) {
  EXPECT_DOUBLE_EQ(realaa_envelope(1e4, 16, 5, 0), 1e4);
}

TEST(RealaaEnvelope, SingleIterationSingleBudgetIsExact) {
  // t = 1 forced into one iteration: best product is 1, denominator n - 2t.
  EXPECT_DOUBLE_EQ(realaa_envelope(10.0, 4, 1, 1), 10.0 / 2.0);
}

TEST(RealaaEnvelope, ShrinksAsIterationsAccumulate) {
  double prev = realaa_envelope(1e6, 16, 5, 1);
  for (std::size_t k = 2; k <= 8; ++k) {
    const double cur = realaa_envelope(1e6, 16, 5, k);
    EXPECT_LT(cur, prev) << "k = " << k;
    prev = cur;
  }
}

TEST(BuildLedger, CleanContractionPassesEveryCheck) {
  LedgerInput in = real_input();
  in.rounds = 12;
  // Iteration ends at rounds 3/6/9/12, each comfortably inside the
  // worst-case product envelope; final diameter within eps.
  in.diameters = {{0, 1e4}, {3, 100.0}, {6, 10.0}, {9, 2.0}, {12, 0.5}};
  const Ledger ledger = build_ledger(in);
  EXPECT_TRUE(ledger.ok());
  EXPECT_EQ(ledger.violations, 0u);
  ASSERT_TRUE(ledger.rounds_to_eps.has_value());
  EXPECT_EQ(*ledger.rounds_to_eps, 12u);
  EXPECT_TRUE(ledger.theorem3_round_bound.has_value());
  ASSERT_EQ(ledger.checks.size(), 4u);
  EXPECT_EQ(ledger.checks[0].name, "budget_feasible");
  EXPECT_EQ(ledger.checks[1].name, "non_expansion");
  EXPECT_EQ(ledger.checks[2].name, "contraction_envelope");
  EXPECT_EQ(ledger.checks[3].name, "final_within_eps");
  for (const LedgerCheck& c : ledger.checks) EXPECT_TRUE(c.ok) << c.name;
}

TEST(BuildLedger, MislabeledTraceFailsBudgetFeasibility) {
  // The oracle: a report claiming eps-agreement from spread 1e4 in fewer
  // rounds than Fekete's K(R, D) allows describes an impossible protocol.
  LedgerInput in = real_input();
  const std::size_t lb = bounds::lower_bound_rounds(in.d0, in.n, in.t);
  ASSERT_GE(lb, 1u);
  in.rounds = static_cast<Round>(lb - 1);
  in.diameters = {{0, 1e4}, {static_cast<Round>(lb - 1), 0.5}};
  const Ledger ledger = build_ledger(in);
  EXPECT_FALSE(ledger.ok());
  EXPECT_GE(ledger.violations, 1u);
  bool found = false;
  for (const LedgerCheck& c : ledger.checks) {
    if (c.name != "budget_feasible") continue;
    found = true;
    EXPECT_FALSE(c.ok);
    EXPECT_NE(c.detail.find("no deterministic protocol"), std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST(BuildLedger, ExpansionRoundsAreFlaggedForGradecastProtocols) {
  LedgerInput in = real_input();
  in.rounds = 40;
  in.diameters = {{0, 1e4}, {1, 1e4}, {2, 2e4}, {3, 50.0}, {40, 0.1}};
  const Ledger ledger = build_ledger(in);
  EXPECT_FALSE(ledger.ok());
  ASSERT_EQ(ledger.rows.size(), 5u);
  EXPECT_FALSE(ledger.rows[1].violation);  // flat is not expansion
  EXPECT_TRUE(ledger.rows[2].violation);
  EXPECT_NE(ledger.rows[2].note.find("expanded"), std::string::npos);
  for (const LedgerCheck& c : ledger.checks) {
    if (c.name == "non_expansion") {
      EXPECT_FALSE(c.ok);
    }
  }
}

TEST(BuildLedger, EnvelopeViolationFiresOnIterationEndRounds) {
  LedgerInput in = real_input();
  in.rounds = 40;
  // Round 6 = iteration 2: envelope is d0 * sup(prod t_i)/(n-2t)^2 — far
  // below d0. A diameter still at d0 there must be flagged.
  in.diameters = {{0, 1e4}, {6, 9999.0}, {40, 0.1}};
  const Ledger ledger = build_ledger(in);
  EXPECT_FALSE(ledger.ok());
  ASSERT_EQ(ledger.rows.size(), 3u);
  ASSERT_TRUE(ledger.rows[1].envelope.has_value());
  EXPECT_TRUE(ledger.rows[1].violation);
  for (const LedgerCheck& c : ledger.checks) {
    if (c.name == "contraction_envelope") {
      EXPECT_FALSE(c.ok);
    }
  }
}

TEST(BuildLedger, VertexProtocolsSkipGradecastOnlyChecks) {
  LedgerInput in;
  in.protocol = "tree_aa";
  in.n = 7;
  in.t = 2;
  in.rounds = 10;
  in.d0 = 40.0;
  // A momentary plateau/growth is legal for TreeAA's per-round series
  // (phases within an iteration may not contract monotonically).
  in.diameters = {{0, 40.0}, {1, 41.0}, {9, 1.0}};
  const Ledger ledger = build_ledger(in);
  EXPECT_TRUE(ledger.ok());
  EXPECT_FALSE(ledger.theorem3_round_bound.has_value());
  for (const LedgerCheck& c : ledger.checks) {
    EXPECT_NE(c.name, "non_expansion");
    EXPECT_NE(c.name, "contraction_envelope");
  }
}

TEST(BuildLedger, BlockRoundBoundCheckPassesAndFails) {
  // BlockAA: the observed rounds must respect the arXiv:2502.05591 budget
  // on the agreement tree (the report's block_round_bound param).
  LedgerInput in;
  in.protocol = "block_aa";
  in.n = 7;
  in.t = 2;
  in.rounds = 12;
  in.d0 = 9.0;
  in.block_round_bound = 12.0;
  in.diameters = {{0, 9.0}, {6, 3.0}, {12, 1.0}};
  {
    const Ledger ledger = build_ledger(in);
    bool found = false;
    for (const LedgerCheck& c : ledger.checks) {
      if (c.name != "block_round_bound") continue;
      found = true;
      EXPECT_TRUE(c.ok) << c.detail;
      EXPECT_NE(c.detail.find("2502.05591"), std::string::npos);
    }
    EXPECT_TRUE(found);
    EXPECT_TRUE(ledger.ok());
  }
  // More observed rounds than the bound allows: the check fails and counts
  // a violation.
  in.rounds = 13;
  in.diameters = {{0, 9.0}, {6, 3.0}, {13, 1.0}};
  {
    const Ledger ledger = build_ledger(in);
    bool found = false;
    for (const LedgerCheck& c : ledger.checks) {
      if (c.name != "block_round_bound") continue;
      found = true;
      EXPECT_FALSE(c.ok);
    }
    EXPECT_TRUE(found);
    EXPECT_FALSE(ledger.ok());
  }
  // Without the param (every other protocol) the check never appears.
  in.block_round_bound.reset();
  for (const LedgerCheck& c : build_ledger(in).checks) {
    EXPECT_NE(c.name, "block_round_bound");
  }
}

TEST(LedgerInputFromReport, BlockAAReadsGraphDiameterAndRoundBound) {
  obs::RunReport report;
  report.protocol = "block_aa";
  report.n = 7;
  report.t = 2;
  report.rounds = 15;
  report.add_param("graph_diameter", 11.0);
  report.add_param("block_round_bound", 15.0);
  obs::RoundSample s;
  s.round = 0;
  s.value_diameter = 11.0;
  report.per_round = {s};
  const auto in = ledger_input_from_report(report);
  ASSERT_TRUE(in.has_value());
  // d0 comes from the graph diameter (the ledger's D for block graphs),
  // not the observed-series fallback.
  EXPECT_DOUBLE_EQ(in->d0, 11.0);
  ASSERT_TRUE(in->block_round_bound.has_value());
  EXPECT_DOUBLE_EQ(*in->block_round_bound, 15.0);
  // Other protocols never pick the param up, even if present.
  report.protocol = "tree_aa";
  const auto tree_in = ledger_input_from_report(report);
  ASSERT_TRUE(tree_in.has_value());
  EXPECT_FALSE(tree_in->block_round_bound.has_value());
}

TEST(BuildLedger, LuckyFastRunIsInformationalNotAViolation) {
  // Fekete is worst-case over executions: reaching eps before the lower
  // bound flips within_fekete but must not add a violation.
  LedgerInput in = real_input();
  const std::size_t lb = bounds::lower_bound_rounds(in.d0, in.n, in.t);
  ASSERT_GE(lb, 2u);
  in.rounds = 40;
  in.diameters = {{0, 1e4}, {1, 0.5}, {40, 0.2}};
  const Ledger ledger = build_ledger(in);
  EXPECT_FALSE(ledger.within_fekete);
  EXPECT_TRUE(ledger.ok());
}

TEST(LedgerInputFromReport, ReadsParamsAndPerRoundSeries) {
  obs::RunReport report;
  report.protocol = "real_aa";
  report.n = 16;
  report.t = 5;
  report.rounds = 21;
  report.add_param("eps", 2.0);
  report.add_param("known_range", 1e5);
  obs::RoundSample s0;
  s0.round = 0;
  s0.value_diameter = 1e5;
  obs::RoundSample s1;
  s1.round = 3;  // no diameter sample
  obs::RoundSample s2;
  s2.round = 6;
  s2.value_diameter = 500.0;
  report.per_round = {s0, s1, s2};
  const auto in = ledger_input_from_report(report);
  ASSERT_TRUE(in.has_value());
  EXPECT_EQ(in->protocol, "real_aa");
  EXPECT_DOUBLE_EQ(in->eps, 2.0);
  EXPECT_DOUBLE_EQ(in->d0, 1e5);
  ASSERT_EQ(in->diameters.size(), 2u);  // the sample-less round is absent
  EXPECT_EQ(in->diameters[1].first, 6u);
}

TEST(LedgerInputFromReport, FallsBackToLargestObservedDiameter) {
  obs::RunReport report;
  report.protocol = "tree_aa";
  report.n = 7;
  report.t = 2;
  report.rounds = 8;
  obs::RoundSample s;
  s.round = 0;
  s.value_diameter = 33.0;
  report.per_round = {s};
  const auto in = ledger_input_from_report(report);
  ASSERT_TRUE(in.has_value());
  EXPECT_DOUBLE_EQ(in->d0, 33.0);
  EXPECT_DOUBLE_EQ(in->eps, 1.0);
}

TEST(LedgerInputFromJson, ParsesRunReportDocuments) {
  const auto doc = JsonValue::parse(R"({
    "schema": "treeaa.run_report/1",
    "protocol": "real_aa", "n": 16, "t": 5, "rounds": 21,
    "params": {"eps": 1, "known_range": 10000},
    "per_round": [
      {"round": 0, "value_diameter": 10000},
      {"round": 3, "value_diameter": 120.5}
    ]
  })");
  ASSERT_TRUE(doc.has_value());
  const auto in = ledger_input_from_json(*doc);
  ASSERT_TRUE(in.has_value());
  EXPECT_EQ(in->n, 16u);
  EXPECT_DOUBLE_EQ(in->d0, 10000.0);
  ASSERT_EQ(in->diameters.size(), 2u);
  EXPECT_DOUBLE_EQ(in->diameters[1].second, 120.5);
  // eps_override replaces the report's eps.
  const auto overridden = ledger_input_from_json(*doc, 0.5);
  ASSERT_TRUE(overridden.has_value());
  EXPECT_DOUBLE_EQ(overridden->eps, 0.5);
}

TEST(LedgerInputFromJson, RejectsForeignSchemasAndMissingFields) {
  const auto wrong = JsonValue::parse(
      R"({"schema": "treeaa.net_report/1", "protocol": "x",
          "n": 4, "t": 1, "rounds": 2})");
  ASSERT_TRUE(wrong.has_value());
  EXPECT_FALSE(ledger_input_from_json(*wrong).has_value());
  const auto partial = JsonValue::parse(R"({"protocol": "real_aa", "n": 4})");
  ASSERT_TRUE(partial.has_value());
  EXPECT_FALSE(ledger_input_from_json(*partial).has_value());
}

TEST(TraceReportJson, IsValidDeterministicJsonWithTraceStats) {
  LedgerInput in = real_input();
  in.rounds = 21;
  // Round 21 = iteration 7 > t: the best budget product degenerates to 1,
  // so the envelope there is d0/(n-2t)^7 ≈ 0.036 — the final diameter must
  // sit below it for the clean-ledger path.
  in.diameters = {{0, 1e4}, {3, 50.0}, {21, 0.01}};
  const Ledger ledger = build_ledger(in);
  TraceStats stats;
  stats.span_events = 42;
  stats.flow_events = 10;
  stats.tracks = {"engine", "parties"};
  stats.transcript_events = 100;
  stats.transcript_messages = 60;
  const std::string a = trace_report_json(ledger, stats);
  const std::string b = trace_report_json(ledger, stats);
  EXPECT_EQ(a, b);
  const auto doc = JsonValue::parse(a);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("schema")->as_string(), "treeaa.trace_report/1");
  EXPECT_TRUE(doc->find("ok")->as_bool());
  ASSERT_NE(doc->find("ledger"), nullptr);
  EXPECT_EQ(doc->find("ledger")->items().size(), 3u);
  const JsonValue* trace = doc->find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_DOUBLE_EQ(trace->find("span_events")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(trace->find("transcript_messages")->as_number(), 60.0);
  ASSERT_EQ(trace->find("tracks")->items().size(), 2u);
}

}  // namespace
}  // namespace treeaa::exp
