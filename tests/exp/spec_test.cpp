// Spec parsing, validation, and the documented grid-expansion order.
#include "exp/spec.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace treeaa::exp {
namespace {

constexpr const char* kVertexSpec = R"({
  "name": "vertex",
  "seed": 7,
  "scenarios": [
    {"protocols": ["tree_aa", "iterated_tree_aa"],
     "tree": {"families": ["path", "star"], "sizes": [10, 20]},
     "n": [7],
     "adversaries": ["none", "silent"]}
  ]
})";

TEST(SweepSpec, ParsesVertexSpec) {
  const SweepSpec spec = spec_from_json(kVertexSpec);
  EXPECT_EQ(spec.name, "vertex");
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.repeats, 1u);
  ASSERT_EQ(spec.scenarios.size(), 1u);
  const Scenario& s = spec.scenarios[0];
  ASSERT_TRUE(s.tree.has_value());
  EXPECT_EQ(s.tree->families.size(), 2u);
  EXPECT_TRUE(s.t_values.empty());  // default: t = (n - 1) / 3
}

TEST(SweepSpec, ExpandFollowsDocumentedAxisOrder) {
  // protocols -> families -> sizes -> adversaries (inner); indices are
  // assigned in that nesting order.
  const SweepSpec spec = spec_from_json(kVertexSpec);
  const std::vector<Cell> cells = expand(spec);
  ASSERT_EQ(cells.size(), 2u * 2u * 2u * 2u);  // protocols*families*sizes*advs
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
  }
  // Innermost axis (adversary) flips fastest.
  EXPECT_EQ(cells[0].adversary, AdversaryKind::kNone);
  EXPECT_EQ(cells[1].adversary, AdversaryKind::kSilent);
  EXPECT_EQ(cells[0].tree_size, 10u);
  EXPECT_EQ(cells[2].tree_size, 20u);
  // Then sizes, then families, then protocol (outermost).
  EXPECT_EQ(cells[0].family, "path");
  EXPECT_EQ(cells[4].family, "star");
  EXPECT_EQ(cells[0].protocol, Protocol::kTreeAA);
  EXPECT_EQ(cells[8].protocol, Protocol::kIteratedTreeAA);
  // Default t = (n - 1) / 3 = 2 for n = 7.
  EXPECT_EQ(cells[0].n, 7u);
  EXPECT_EQ(cells[0].t, 2u);
}

TEST(SweepSpec, InapplicableAxesCollapse) {
  // Two engines multiply tree_aa cells but not the iterated baseline's.
  const SweepSpec spec = spec_from_json(R"({
    "name": "collapse",
    "scenarios": [
      {"protocols": ["tree_aa", "iterated_tree_aa"],
       "tree": {"families": ["path"], "sizes": [10]},
       "engine": ["bdh", "classic"],
       "n": [7]}
    ]
  })");
  const std::vector<Cell> cells = expand(spec);
  ASSERT_EQ(cells.size(), 3u);  // tree_aa x {bdh, classic} + iterated x 1
  EXPECT_EQ(cells[0].engine, core::RealEngineKind::kGradecastBdh);
  EXPECT_EQ(cells[1].engine, core::RealEngineKind::kClassicHalving);
  EXPECT_EQ(cells[2].protocol, Protocol::kIteratedTreeAA);
}

TEST(SweepSpec, RepeatsAreTheInnermostAxis) {
  const SweepSpec spec = spec_from_json(R"({
    "name": "repeats", "repeats": 3,
    "scenarios": [
      {"protocols": ["real_aa"], "range": [100, 1000], "n": [7]}
    ]
  })");
  const std::vector<Cell> cells = expand(spec);
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells[0].repeat, 0u);
  EXPECT_EQ(cells[2].repeat, 2u);
  EXPECT_DOUBLE_EQ(cells[2].known_range, 100.0);
  EXPECT_DOUBLE_EQ(cells[3].known_range, 1000.0);
}

TEST(SweepSpec, ExplicitTGrid) {
  const SweepSpec spec = spec_from_json(R"({
    "name": "ts",
    "scenarios": [
      {"protocols": ["real_aa"], "range": [100], "n": [10], "t": [1, 2, 3]}
    ]
  })");
  const std::vector<Cell> cells = expand(spec);
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0].t, 1u);
  EXPECT_EQ(cells[2].t, 3u);
}

void expect_rejected(const std::string& text, const std::string& needle) {
  try {
    (void)spec_from_json(text);
    FAIL() << "expected rejection mentioning '" << needle << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(SweepSpec, RejectsInvalidDocuments) {
  expect_rejected("{", "malformed JSON");
  expect_rejected(R"({"scenarios": []})", "name");
  expect_rejected(R"({"name": "x"})", "scenarios");
  expect_rejected(R"({"name": "x", "bogus": 1, "scenarios": [
    {"protocols": ["real_aa"], "range": [100], "n": [7]}]})",
                  "unknown key 'bogus'");
}

TEST(SweepSpec, RejectsInvalidScenarios) {
  // Unknown protocol name.
  expect_rejected(R"({"name": "x", "scenarios": [
    {"protocols": ["tree_agreement"], "range": [100], "n": [7]}]})",
                  "unknown protocol");
  // Mixed tree-valued and real-valued protocols in one scenario.
  expect_rejected(R"({"name": "x", "scenarios": [
    {"protocols": ["tree_aa", "real_aa"],
     "tree": {"families": ["path"], "sizes": [10]}, "n": [7]}]})",
                  "all tree-valued, all real-valued, or all graph-valued");
  // Tree protocols require a tree axis; real ones a range axis.
  expect_rejected(R"({"name": "x", "scenarios": [
    {"protocols": ["tree_aa"], "n": [7]}]})",
                  "tree is required");
  expect_rejected(R"({"name": "x", "scenarios": [
    {"protocols": ["real_aa"], "n": [7]}]})",
                  "range is required");
  // Unknown tree family.
  expect_rejected(R"({"name": "x", "scenarios": [
    {"protocols": ["tree_aa"],
     "tree": {"families": ["moebius"], "sizes": [10]}, "n": [7]}]})",
                  "unknown tree family");
}

TEST(SweepSpec, RejectsInvalidGrids) {
  // n <= 3t is caught at parse time (spec_from_json expands eagerly).
  expect_rejected(R"({"name": "x", "scenarios": [
    {"protocols": ["real_aa"], "range": [100], "n": [7], "t": [3]}]})",
                  "n > 3t");
  // split1 targets RealAA's iteration schedule only.
  expect_rejected(R"({"name": "x", "scenarios": [
    {"protocols": ["iterated_real_aa"], "range": [100], "n": [7],
     "adversaries": ["split1"]}]})",
                  "does not apply");
  // split needs a gradecast distribution mechanism.
  expect_rejected(R"({"name": "x", "scenarios": [
    {"protocols": ["iterated_tree_aa"],
     "tree": {"families": ["path"], "sizes": [10]}, "n": [7],
     "adversaries": ["split"]}]})",
                  "does not apply");
}

TEST(SweepSpec, NameTables) {
  EXPECT_STREQ(protocol_name(Protocol::kTreeAA), "tree_aa");
  EXPECT_STREQ(protocol_name(Protocol::kIteratedRealAA), "iterated_real_aa");
  EXPECT_STREQ(adversary_name(AdversaryKind::kSplit1), "split1");
  EXPECT_STREQ(input_kind_name(InputKind::kRandom), "random");
  EXPECT_TRUE(is_vertex_protocol(Protocol::kIteratedTreeAA));
  EXPECT_FALSE(is_vertex_protocol(Protocol::kRealAA));
}

}  // namespace
}  // namespace treeaa::exp
