// The protocol registry: name round-trips, predicate sanity, and — the
// ISSUE's acceptance bar for the dispatch table — every registered protocol
// runs through run_protocol() on a small instance and its honest outputs
// pass the matching agreement check.
#include "harness/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/api.h"
#include "graphs/block_index.h"
#include "graphs/check.h"
#include "graphs/generators.h"
#include "harness/runner.h"
#include "obs/report.h"
#include "trees/generators.h"

namespace treeaa {
namespace {

TEST(RegistryTest, ProtocolNamesRoundTrip) {
  std::vector<std::string> seen;
  for (const harness::ProtocolKind p : harness::all_protocols()) {
    const std::string name = harness::protocol_name(p);
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(std::count(seen.begin(), seen.end(), name), 0)
        << "duplicate protocol name " << name;
    seen.push_back(name);
    const auto back = harness::protocol_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, p);
  }
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_FALSE(harness::protocol_from_name("no_such_protocol").has_value());
}

TEST(RegistryTest, AdversaryAndSchedulerNamesRoundTrip) {
  for (const harness::AdversaryKind a : harness::all_adversaries()) {
    const auto back = harness::adversary_from_name(harness::adversary_name(a));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, a);
  }
  EXPECT_FALSE(harness::adversary_from_name("no_such_adversary").has_value());
  for (const auto s :
       {async::SchedulerKind::kFifo, async::SchedulerKind::kLifo,
        async::SchedulerKind::kRandom}) {
    const auto back = harness::scheduler_from_name(harness::scheduler_name(s));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, s);
  }
  EXPECT_FALSE(harness::scheduler_from_name("no_such_scheduler").has_value());
}

TEST(RegistryTest, Predicates) {
  using harness::ProtocolKind;
  EXPECT_TRUE(harness::is_vertex_protocol(ProtocolKind::kTreeAA));
  EXPECT_TRUE(harness::is_vertex_protocol(ProtocolKind::kPathsFinder));
  EXPECT_FALSE(harness::is_vertex_protocol(ProtocolKind::kRealAA));
  EXPECT_TRUE(harness::is_sweep_protocol(ProtocolKind::kIteratedRealAA));
  EXPECT_FALSE(harness::is_sweep_protocol(ProtocolKind::kPathAA));
  EXPECT_FALSE(harness::is_sweep_protocol(ProtocolKind::kAsyncTreeAA));
  // BlockAA takes graph-vertex inputs: its own family, neither tree-vertex
  // nor real-valued, but sweepable.
  EXPECT_TRUE(harness::is_graph_protocol(ProtocolKind::kBlockAA));
  EXPECT_FALSE(harness::is_vertex_protocol(ProtocolKind::kBlockAA));
  EXPECT_FALSE(harness::is_graph_protocol(ProtocolKind::kTreeAA));
  EXPECT_FALSE(harness::is_graph_protocol(ProtocolKind::kRealAA));
  EXPECT_TRUE(harness::is_sweep_protocol(ProtocolKind::kBlockAA));
  // split targets gradecast distribution; split1 additionally needs
  // RealAA's iteration schedule.
  EXPECT_TRUE(harness::adversary_applies(ProtocolKind::kTreeAA,
                                         harness::AdversaryKind::kSplit));
  EXPECT_FALSE(harness::adversary_applies(ProtocolKind::kTreeAA,
                                          harness::AdversaryKind::kSplit1));
  EXPECT_TRUE(harness::adversary_applies(ProtocolKind::kRealAA,
                                         harness::AdversaryKind::kSplit1));
  EXPECT_TRUE(harness::adversary_applies(ProtocolKind::kBlockAA,
                                         harness::AdversaryKind::kSplit));
  EXPECT_FALSE(harness::adversary_applies(ProtocolKind::kBlockAA,
                                          harness::AdversaryKind::kSplit1));
}

/// Runs every registered protocol on a small instance via run_protocol()
/// and checks the honest outputs satisfy the protocol family's agreement
/// guarantee.
TEST(RegistryTest, EveryRegisteredProtocolRunsAndAgrees) {
  const auto spider = make_spider(3, 3);
  const auto path = make_path(9);
  const graphs::BlockIndex block_index(graphs::make_clique_chain(10, 4));
  const std::size_t n = 7, t = 2;

  for (const harness::ProtocolKind p : harness::all_protocols()) {
    SCOPED_TRACE(harness::protocol_name(p));
    harness::RunSpec spec;
    spec.protocol = p;
    spec.n = n;
    spec.t = t;
    if (harness::is_graph_protocol(p)) {
      spec.block_index = &block_index;
      const auto [end_a, end_b] = block_index.diameter_endpoints();
      for (std::size_t q = 0; q < n; ++q) {
        spec.vertex_inputs.push_back(q % 2 == 0 ? end_a : end_b);
      }
      const auto inputs = spec.vertex_inputs;
      auto out = harness::run_protocol(std::move(spec));
      EXPECT_TRUE(out.corrupt.empty());
      const auto check = graphs::check_agreement(
          block_index, inputs, out.honest_vertex_outputs());
      EXPECT_TRUE(check.valid);
      EXPECT_TRUE(check.one_agreement);
    } else if (harness::is_vertex_protocol(p)) {
      // PathAA is the warm-up protocol on labeled paths; everything else
      // runs on the spider.
      const LabeledTree& tree =
          p == harness::ProtocolKind::kPathAA ? path : spider;
      spec.tree = &tree;
      spec.vertex_inputs = harness::spread_vertex_inputs(tree, n);
      const auto inputs = spec.vertex_inputs;
      auto out = harness::run_protocol(std::move(spec));
      EXPECT_TRUE(out.corrupt.empty());
      if (p == harness::ProtocolKind::kPathsFinder) {
        // Phase 1 alone: every party must output a root-anchored path.
        ASSERT_EQ(out.paths.size(), n);
        for (const auto& path_out : out.paths) {
          ASSERT_TRUE(path_out.has_value());
          ASSERT_FALSE(path_out->empty());
          EXPECT_EQ(path_out->front(), tree.root());
        }
        continue;
      }
      const auto honest = out.honest_vertex_outputs();
      ASSERT_EQ(honest.size(), n);
      const auto check = core::check_agreement(tree, inputs, honest);
      EXPECT_TRUE(check.valid);
      EXPECT_TRUE(check.one_agreement);
    } else {
      spec.eps = 0.5;
      spec.known_range = 100.0;
      spec.real_inputs = harness::spread_real_inputs(n, 0.0, 100.0);
      auto out = harness::run_protocol(std::move(spec));
      const auto honest = out.honest_real_outputs();
      ASSERT_EQ(honest.size(), n);
      const auto [lo, hi] =
          std::minmax_element(honest.begin(), honest.end());
      EXPECT_LE(*hi - *lo, 0.5);   // eps-agreement
      EXPECT_GE(*lo, 0.0);         // validity within the input range
      EXPECT_LE(*hi, 100.0);
    }
  }
}

/// make_adversary covers every named kind, and the registry-built silent
/// adversary leaves the honest parties in agreement.
TEST(RegistryTest, MakeAdversaryAndSilentRun) {
  harness::AdversaryPlan none;
  EXPECT_EQ(harness::make_adversary(none), nullptr);

  const auto tree = make_spider(3, 3);
  const std::size_t n = 7, t = 2;
  harness::AdversaryPlan plan;
  plan.kind = harness::AdversaryKind::kSilent;
  plan.victims = {1, 4};

  harness::RunSpec spec;
  spec.protocol = harness::ProtocolKind::kTreeAA;
  spec.n = n;
  spec.t = t;
  spec.tree = &tree;
  spec.vertex_inputs = harness::spread_vertex_inputs(tree, n);
  spec.adversary = harness::make_adversary(plan);
  ASSERT_NE(spec.adversary, nullptr);
  const auto inputs = spec.vertex_inputs;
  auto out = harness::run_protocol(std::move(spec));
  EXPECT_EQ(out.corrupt, plan.victims);

  std::vector<VertexId> honest_inputs;
  for (PartyId q = 0; q < n; ++q) {
    if (out.vertex_outputs[q].has_value()) honest_inputs.push_back(inputs[q]);
  }
  const auto check = core::check_agreement(tree, honest_inputs,
                                           out.honest_vertex_outputs());
  EXPECT_TRUE(check.valid);
  EXPECT_TRUE(check.one_agreement);
}

/// The parallel engine's registry-level determinism contract: every
/// synchronous protocol, under every adversary that applies to it, yields
/// the same outputs and the byte-identical canonical run report at
/// RunSpec::threads 1, 2, and 8. (The async protocol is excluded: its
/// engine has its own scheduler and documents that it ignores `threads`.)
TEST(RegistryTest, ThreadsNeverChangeOutcomeOrReport) {
  const auto spider = make_spider(3, 3);
  const auto path = make_path(9);
  const graphs::BlockIndex block_index(graphs::make_clique_chain(10, 4));
  const std::size_t n = 7, t = 2;

  for (const harness::ProtocolKind p : harness::all_protocols()) {
    if (p == harness::ProtocolKind::kAsyncTreeAA) continue;
    for (const harness::AdversaryKind a : harness::all_adversaries()) {
      if (!harness::adversary_applies(p, a)) continue;
      SCOPED_TRACE(std::string(harness::protocol_name(p)) + " vs " +
                   harness::adversary_name(a));
      const LabeledTree& tree =
          p == harness::ProtocolKind::kPathAA ? path : spider;

      auto run_at = [&](std::size_t threads) {
        obs::RunReport report;
        obs::Hooks hooks;
        hooks.report = &report;

        harness::RunSpec spec;
        spec.protocol = p;
        spec.n = n;
        spec.t = t;
        spec.threads = threads;
        spec.hooks = &hooks;
        if (harness::is_graph_protocol(p)) {
          spec.block_index = &block_index;
          const auto [end_a, end_b] = block_index.diameter_endpoints();
          for (std::size_t q = 0; q < n; ++q) {
            spec.vertex_inputs.push_back(q % 2 == 0 ? end_a : end_b);
          }
        } else if (harness::is_vertex_protocol(p)) {
          spec.tree = &tree;
          spec.vertex_inputs = harness::spread_vertex_inputs(tree, n);
        } else {
          spec.eps = 0.5;
          spec.known_range = 100.0;
          spec.real_inputs = harness::spread_real_inputs(n, 0.0, 100.0);
        }

        harness::AdversaryPlan plan;
        plan.kind = a;
        plan.victims = {1, 4};
        plan.fuzz_seed = 77;
        if (a == harness::AdversaryKind::kSplit ||
            a == harness::AdversaryKind::kSplit1) {
          if (harness::is_graph_protocol(p)) {
            // The split attack aims at the inner TreeAA's topology: the
            // agreement tree, not the graph.
            plan.split_config = core::paths_finder_config(
                block_index.agreement_tree(), n, t, {});
          } else if (harness::is_vertex_protocol(p)) {
            plan.split_config = core::paths_finder_config(tree, n, t, {});
          } else {
            realaa::Config cfg;
            cfg.n = n;
            cfg.t = t;
            cfg.eps = 0.5;
            cfg.known_range = 100.0;
            plan.split_config = cfg;
          }
        }
        spec.adversary = harness::make_adversary(plan);

        auto out = harness::run_protocol(std::move(spec));
        return std::make_tuple(report.to_json(/*include_timings=*/false),
                               out.vertex_outputs, out.real_outputs,
                               out.paths, out.corrupt, out.rounds);
      };

      const auto base = run_at(1);
      EXPECT_FALSE(std::get<0>(base).empty());
      EXPECT_EQ(run_at(2), base);
      EXPECT_EQ(run_at(8), base);
    }
  }
}

}  // namespace
}  // namespace treeaa
