// The serializable adversary surface: wire-form goldens (byte-stable JSON
// for corpus diffs), the plan adapter, the space's invariants as a property
// test (every sampled point builds and runs to agreement), and the
// kDefaultSeed contract — the seed-default unification in registry.h must
// not move a single report byte.
#include "harness/adversary_spec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/api.h"
#include "core/paths_finder.h"
#include "harness/registry.h"
#include "harness/runner.h"
#include "obs/report.h"
#include "sim/strategies.h"
#include "trees/generators.h"

namespace treeaa {
namespace {

TEST(AdversarySpecTest, KindNamesRoundTripThroughTheWireForm) {
  for (const harness::AdversaryKind a : harness::all_adversaries()) {
    harness::AdversarySpec spec;
    spec.kind = a;
    spec.victims = {2, 5};
    std::string error;
    const auto back = harness::adversary_spec_from_json(
        harness::adversary_spec_to_json(spec), &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->kind, a);
    EXPECT_EQ(back->victims, spec.victims);
  }
}

TEST(AdversarySpecTest, WireFormGoldens) {
  // These exact bytes are the corpus/report contract ("treeaa.adversary_
  // spec/1"): key order and number formatting may not drift.
  harness::AdversarySpec none;
  EXPECT_EQ(harness::adversary_spec_to_json(none), "{\"kind\":\"none\"}");

  harness::AdversarySpec silent;
  silent.kind = harness::AdversaryKind::kSilent;
  silent.victims = {1, 4};
  EXPECT_EQ(harness::adversary_spec_to_json(silent),
            "{\"kind\":\"silent\",\"victims\":[1,4]}");

  harness::AdversarySpec fuzz;
  fuzz.kind = harness::AdversaryKind::kFuzz;
  fuzz.victims = {0};
  fuzz.fuzz_seed = 9;
  fuzz.fuzz_messages = 32;
  fuzz.fuzz_payload = 64;
  EXPECT_EQ(harness::adversary_spec_to_json(fuzz),
            "{\"kind\":\"fuzz\",\"victims\":[0],\"fuzz_seed\":9,"
            "\"fuzz_messages\":32,\"fuzz_payload\":64}");

  harness::AdversarySpec split;
  split.kind = harness::AdversaryKind::kSplit;
  split.victims = {5, 6, 7};
  split.split_schedule = {2, 1};
  split.split_start_round = 3;
  EXPECT_EQ(harness::adversary_spec_to_json(split),
            "{\"kind\":\"split\",\"victims\":[5,6,7],"
            "\"split_schedule\":[2,1],\"split_start_round\":3}");

  harness::AdversarySpec crash;
  crash.crashes = {{2, 4, 0.5}};
  EXPECT_EQ(harness::adversary_spec_to_json(crash),
            "{\"kind\":\"none\",\"crashes\":[{\"party\":2,\"round\":4,"
            "\"delivered_fraction\":0.5}]}");
}

TEST(AdversarySpecTest, JsonRoundTripIsByteExact) {
  harness::AdversarySpec spec;
  spec.kind = harness::AdversaryKind::kFuzz;
  spec.victims = {1, 3};
  spec.fuzz_seed = 123456789;
  spec.fuzz_messages = 7;
  spec.fuzz_payload = 90;
  spec.crashes = {{3, 2, 0.25}, {6, 5, 0.0}};
  const std::string json = harness::adversary_spec_to_json(spec);
  std::string error;
  const auto back = harness::adversary_spec_from_json(json, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(harness::adversary_spec_to_json(*back), json);
}

TEST(AdversarySpecTest, ParserRejectsUnknownKeysAndBadKinds) {
  std::string error;
  EXPECT_FALSE(harness::adversary_spec_from_json(
                   "{\"kind\":\"none\",\"surprise\":1}", &error)
                   .has_value());
  EXPECT_FALSE(
      harness::adversary_spec_from_json("{\"kind\":\"sneaky\"}", &error)
          .has_value());
  EXPECT_FALSE(harness::adversary_spec_from_json("[]", &error).has_value());
}

TEST(AdversarySpecTest, FixedPointsIncludeTheSection3Split) {
  // Generation 0 of the search seeds from these; the kSplit point is the
  // paper's §3 optimal split (last t parties, empty = even schedule), which
  // is what guarantees the hunt never scores below the named library.
  harness::AdversarySpace space;
  space.n = 8;
  space.t = 2;
  space.iterations = 3;
  space.rounds = 12;
  space.kinds = {harness::AdversaryKind::kNone,
                 harness::AdversaryKind::kSilent,
                 harness::AdversaryKind::kFuzz,
                 harness::AdversaryKind::kSplit};
  const auto points = space.fixed_points();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].kind, harness::AdversaryKind::kNone);
  const auto& split = points[3];
  EXPECT_EQ(split.kind, harness::AdversaryKind::kSplit);
  EXPECT_EQ(split.victims, (std::vector<PartyId>{6, 7}));
  EXPECT_TRUE(split.split_schedule.empty());
}

/// Property test over the whole space: every sampled/mutated/crossed point
/// satisfies the invariants and, built via make_adversary, runs TreeAA to
/// agreement on a small tree.
TEST(AdversarySpecTest, EverySampledPointBuildsAndRunsToAgreement) {
  const auto tree = make_spider(3, 3);
  const std::size_t n = 8, t = 2;

  harness::AdversarySpace space;
  space.n = n;
  space.t = t;
  space.rounds = static_cast<Round>(core::tree_aa_rounds(tree, n, t));
  space.split_config = core::paths_finder_config(tree, n, t, {});
  space.iterations = space.split_config.iterations();
  for (const harness::AdversaryKind a : harness::all_adversaries()) {
    if (harness::adversary_applies(harness::ProtocolKind::kTreeAA, a)) {
      space.kinds.push_back(a);
    }
  }

  Rng rng(2024);
  std::vector<harness::AdversarySpec> points = space.fixed_points();
  for (int i = 0; i < 24; ++i) points.push_back(space.sample(rng));
  for (int i = 0; i < 12; ++i) {
    points.push_back(space.mutate(points[rng.index(points.size())], rng));
    const auto& a = points[rng.index(points.size())];
    const auto& b = points[rng.index(points.size())];
    points.push_back(space.crossover(a, b, rng));
  }

  for (std::size_t i = 0; i < points.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i) + ": " +
                 harness::adversary_spec_to_json(points[i]));
    const auto& p = points[i];
    // Invariants repair() promises: victims sorted distinct in [0, n),
    // corruption budget within t, crash rounds within the budget.
    EXPECT_TRUE(std::is_sorted(p.victims.begin(), p.victims.end()));
    EXPECT_EQ(std::set<PartyId>(p.victims.begin(), p.victims.end()).size(),
              p.victims.size());
    for (const PartyId v : p.victims) EXPECT_LT(v, n);
    EXPECT_LE(harness::spec_corrupt_set(p).size(), t);
    for (const auto& c : p.crashes) {
      EXPECT_GE(c.round, 1u);
      EXPECT_LE(c.round, space.rounds);
    }

    harness::RunSpec spec;
    spec.protocol = harness::ProtocolKind::kTreeAA;
    spec.n = n;
    spec.t = t;
    spec.tree = &tree;
    spec.vertex_inputs = harness::spread_vertex_inputs(tree, n);
    spec.adversary = harness::make_adversary(p);
    const auto inputs = spec.vertex_inputs;
    auto out = harness::run_protocol(std::move(spec));

    std::vector<VertexId> honest_inputs;
    for (PartyId q = 0; q < n; ++q) {
      if (out.vertex_outputs[q].has_value()) {
        honest_inputs.push_back(inputs[q]);
      }
    }
    const auto check = core::check_agreement(tree, honest_inputs,
                                             out.honest_vertex_outputs());
    EXPECT_TRUE(check.valid);
    EXPECT_TRUE(check.one_agreement);
  }
}

TEST(AdversarySpecTest, PlanAdapterIsExact) {
  harness::AdversaryPlan plan;
  plan.kind = harness::AdversaryKind::kFuzz;
  plan.victims = {2, 6};
  plan.fuzz_seed = 42;
  const auto spec = harness::spec_from_plan(plan);
  EXPECT_EQ(spec.kind, plan.kind);
  EXPECT_EQ(spec.victims, plan.victims);
  EXPECT_EQ(spec.fuzz_seed, plan.fuzz_seed);
  const auto back = harness::plan_from_spec(spec);
  EXPECT_EQ(back.kind, plan.kind);
  EXPECT_EQ(back.victims, plan.victims);
  EXPECT_EQ(back.fuzz_seed, plan.fuzz_seed);
}

/// The kDefaultSeed contract (registry.h): every harness-level seed knob
/// defaults to the same value, and the unification of AdversaryPlan::
/// fuzz_seed (historically 0) onto it changes no report bytes, because the
/// draw order every tool uses assigns fuzz_seed explicitly after drawing
/// victims. This golden pins that draw order.
TEST(AdversarySpecTest, SeedDefaultsAreUnifiedAndReportBytesUnchanged) {
  EXPECT_EQ(harness::kDefaultSeed, 1u);
  EXPECT_EQ(harness::AdversaryPlan{}.fuzz_seed, harness::kDefaultSeed);
  EXPECT_EQ(harness::AsyncOptions{}.seed, harness::kDefaultSeed);
  EXPECT_EQ(harness::AdversarySpec{}.fuzz_seed, harness::kDefaultSeed);

  // The CLI draw order for --seed 1 (Rng(seed); victims then fuzz_seed =
  // seed): pin the victims so a reordering of the draws cannot hide.
  const std::size_t n = 8, t = 2;
  Rng rng(harness::kDefaultSeed);
  const auto victims = sim::random_parties(n, t, rng);
  ASSERT_EQ(victims.size(), t);

  const auto tree = make_spider(3, 3);
  const auto report_bytes = [&](std::uint64_t* explicit_seed) {
    harness::AdversarySpec adv;
    adv.kind = harness::AdversaryKind::kFuzz;
    adv.victims = victims;
    if (explicit_seed != nullptr) adv.fuzz_seed = *explicit_seed;

    obs::RunReport report;
    obs::Hooks hooks;
    hooks.report = &report;
    harness::RunSpec spec;
    spec.protocol = harness::ProtocolKind::kTreeAA;
    spec.n = n;
    spec.t = t;
    spec.tree = &tree;
    spec.vertex_inputs = harness::spread_vertex_inputs(tree, n);
    spec.adversary = harness::make_adversary(adv);
    spec.hooks = &hooks;
    (void)harness::run_protocol(std::move(spec));
    return report.to_json(false);
  };

  // Defaulted fuzz_seed (now kDefaultSeed = 1) versus the explicit seed the
  // tools always assigned: byte-identical reports.
  std::uint64_t one = 1;
  EXPECT_EQ(report_bytes(nullptr), report_bytes(&one));
}

}  // namespace
}  // namespace treeaa
