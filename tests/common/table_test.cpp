#include "common/table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace treeaa {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "n"});
  t.row({"alpha", "1"});
  t.row({"b", "22222"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name   n"), std::string::npos);
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
  EXPECT_NE(out.find("b      22222"), std::string::npos);
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CountsRows) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.row({"1"});
  t.row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvEscapesHostileCells) {
  Table t({"name", "value"});
  t.row({"plain", "1"});
  t.row({"with,comma", "with\"quote"});
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("name,value\n"), std::string::npos);
  EXPECT_NE(csv.find("plain,1\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\",\"with\"\"quote\"\n"),
            std::string::npos);
}

TEST(Table, RenderForOutputRespectsEnv) {
  Table t({"a"});
  t.row({"1"});
  unsetenv("TREEAA_CSV");
  EXPECT_EQ(render_for_output(t), t.render());
  setenv("TREEAA_CSV", "1", 1);
  EXPECT_EQ(render_for_output(t), t.render_csv());
  unsetenv("TREEAA_CSV");
}

TEST(FmtDouble, FormatsCompactly) {
  EXPECT_EQ(fmt_double(12.0), "12");
  EXPECT_EQ(fmt_double(3.5), "3.5");
  EXPECT_EQ(fmt_double(0.000012345, 3), "1.23e-05");
  EXPECT_EQ(fmt_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(fmt_double(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(fmt_double(std::nan("")), "nan");
}

TEST(FmtRatio, AppendsX) { EXPECT_EQ(fmt_ratio(2.0), "2x"); }

}  // namespace
}  // namespace treeaa
