// Wire-format round trips and hostile-input hardening for ByteWriter /
// ByteReader. Every protocol parser in the repository sits on top of this
// layer, so garbage handling here is load-bearing for Byzantine tolerance.
#include "common/bytes.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"

namespace treeaa {
namespace {

TEST(Bytes, VarintRoundTripSmall) {
  for (std::uint64_t v = 0; v < 1000; ++v) {
    ByteWriter w;
    w.varint(v);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.done());
  }
}

TEST(Bytes, VarintRoundTripBoundaries) {
  const std::uint64_t cases[] = {
      0,       0x7F,       0x80,       0x3FFF,     0x4000,
      1u << 21, 1ull << 35, 1ull << 56, ~0ull >> 1, ~0ull};
  for (const std::uint64_t v : cases) {
    ByteWriter w;
    w.varint(v);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.varint(), v) << v;
  }
}

TEST(Bytes, VarintEncodingIsCompact) {
  ByteWriter w;
  w.varint(5);
  EXPECT_EQ(w.size(), 1u);
  ByteWriter w2;
  w2.varint(300);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(Bytes, SignedVarintRoundTrip) {
  const std::int64_t cases[] = {0,
                                1,
                                -1,
                                63,
                                -64,
                                64,
                                -65,
                                1000000,
                                -1000000,
                                std::numeric_limits<std::int64_t>::max(),
                                std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t v : cases) {
    ByteWriter w;
    w.svarint(v);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.svarint(), v) << v;
  }
}

TEST(Bytes, DoubleRoundTripExactBits) {
  const double cases[] = {0.0,  -0.0, 1.0,   -1.5,
                          3.25, 1e300, -1e-300, 0.1};
  for (const double v : cases) {
    ByteWriter w;
    w.f64(v);
    EXPECT_EQ(w.size(), 8u);
    ByteReader r(w.bytes());
    const double got = r.f64();
    EXPECT_EQ(std::memcmp(&got, &v, sizeof v), 0) << v;
  }
}

TEST(Bytes, StringRoundTrip) {
  ByteWriter w;
  w.str("hello");
  w.str("");
  w.str(std::string("\0binary\xff", 8));
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), std::string("\0binary\xff", 8));
  EXPECT_TRUE(r.done());
}

TEST(Bytes, BlobRoundTrip) {
  Bytes payload{1, 2, 3, 255, 0};
  ByteWriter w;
  w.blob(payload);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.blob(), payload);
}

TEST(Bytes, VectorRoundTrip) {
  std::vector<std::uint64_t> v{1, 2, 300, 400000};
  ByteWriter w;
  w.vec(v, [](ByteWriter& wr, std::uint64_t x) { wr.varint(x); });
  ByteReader r(w.bytes());
  const auto got =
      r.vec<std::uint64_t>([](ByteReader& rd) { return rd.varint(); });
  EXPECT_EQ(got, v);
}

TEST(Bytes, MixedSequenceRoundTrip) {
  ByteWriter w;
  w.u8(7);
  w.varint(123456);
  w.f64(2.5);
  w.str("abc");
  w.svarint(-42);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.varint(), 123456u);
  EXPECT_EQ(r.f64(), 2.5);
  EXPECT_EQ(r.str(), "abc");
  EXPECT_EQ(r.svarint(), -42);
  r.expect_done();
}

// --- Hostile input ----------------------------------------------------------

TEST(Bytes, TruncatedVarintThrows) {
  const Bytes b{0x80, 0x80};  // continuation bits with no terminator
  ByteReader r(b);
  EXPECT_THROW(r.varint(), DecodeError);
}

TEST(Bytes, OverlongVarintThrows) {
  const Bytes b{0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
                0x80, 0x80, 0x80, 0x80, 0x01};  // 11 bytes
  ByteReader r(b);
  EXPECT_THROW(r.varint(), DecodeError);
}

TEST(Bytes, VarintOverflowThrows) {
  // 10 bytes whose top byte pushes past 64 bits.
  const Bytes b{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
  ByteReader r(b);
  EXPECT_THROW(r.varint(), DecodeError);
}

TEST(Bytes, TruncatedDoubleThrows) {
  const Bytes b{1, 2, 3};
  ByteReader r(b);
  EXPECT_THROW(r.f64(), DecodeError);
}

TEST(Bytes, StringLengthBeyondBufferThrows) {
  ByteWriter w;
  w.varint(1000);  // claims 1000 bytes follow
  w.u8('x');
  ByteReader r(w.bytes());
  EXPECT_THROW(r.str(), DecodeError);
}

TEST(Bytes, HostileVectorLengthRejectedBeforeAllocation) {
  ByteWriter w;
  w.varint(~0ull >> 1);  // absurd element count
  ByteReader r(w.bytes());
  EXPECT_THROW(r.vec<std::uint8_t>([](ByteReader& rd) { return rd.u8(); }),
               DecodeError);
}

TEST(Bytes, VectorLengthAboveCapThrows) {
  std::vector<std::uint8_t> v(100, 1);
  ByteWriter w;
  w.vec(v, [](ByteWriter& wr, std::uint8_t x) { wr.u8(x); });
  ByteReader r(w.bytes());
  EXPECT_THROW(
      r.vec<std::uint8_t>([](ByteReader& rd) { return rd.u8(); },
                          /*max_len=*/99),
      DecodeError);
}

TEST(Bytes, ExpectDoneThrowsOnTrailingJunk) {
  ByteWriter w;
  w.u8(1);
  w.u8(2);
  ByteReader r(w.bytes());
  (void)r.u8();
  EXPECT_THROW(r.expect_done(), DecodeError);
}

TEST(Bytes, RandomGarbageNeverReadsOutOfBounds) {
  Rng rng(42);
  for (int trial = 0; trial < 500; ++trial) {
    Bytes b(rng.index(64));
    for (auto& x : b) x = static_cast<std::uint8_t>(rng.next());
    ByteReader r(b);
    // Parse an arbitrary structure; it must either succeed or throw, never
    // crash or hang.
    try {
      (void)r.varint();
      (void)r.blob();
      (void)r.f64();
    } catch (const DecodeError&) {
      // expected for most random buffers
    }
  }
}

}  // namespace
}  // namespace treeaa
