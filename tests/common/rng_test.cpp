// Determinism and distribution sanity for the seeded Rng.
#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace treeaa {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW((void)rng.uniform(3, 2), std::invalid_argument);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, IndexRequiresNonEmpty) {
  Rng rng(3);
  EXPECT_THROW((void)rng.index(0), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(Rng, ShuffleSingleAndEmptyAreNoops) {
  Rng rng(5);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, PickReturnsElement) {
  Rng rng(9);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

TEST(Rng, ForkDecorrelates) {
  Rng a(1);
  Rng child1 = a.fork(1);
  Rng child2 = a.fork(1);  // same tag, but parent advanced — different seed
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.next() == child2.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ForkStreamsAreStable) {
  // The sweep engine derives every cell's randomness as
  // Rng(sweep_seed).fork(cell_index), and sweep reports are promised to be
  // byte-reproducible across machines and thread counts — so the fork
  // streams themselves are pinned here. If this test breaks, every
  // committed sweep report and golden experiment table breaks with it.
  const std::uint64_t tag0[8] = {
      0xFBB4FE5A7A90E027ull, 0x6F73523243E23060ull, 0xDBF0506473468AE9ull,
      0x6EF98C3818A8E647ull, 0xE4F73A09A2FB2B38ull, 0xA6902E0879415611ull,
      0x7C74D59F91D3499Dull, 0x5D58218C807BA99Aull};
  const std::uint64_t tag1[8] = {
      0x3782695004C45E7Cull, 0xAEBC2034A6FD9F27ull, 0xC6090729722022A6ull,
      0x6F5823F3AE4A4367ull, 0x2984618D41DB81A4ull, 0x597F6B7A4A63C19Bull,
      0xB180B8A51AF00D6Full, 0xE13B83C65BA21C17ull};
  const std::uint64_t tag42[8] = {
      0x89BF7F028281920Eull, 0xDC5631ABFC04E482ull, 0xC8A366995904CDD8ull,
      0xBEC880049EB8F0B8ull, 0x34A2C5B5A8B708CDull, 0xB6FE773497CFDB81ull,
      0x60D4BD14A916B5D4ull, 0x67D2697DF7E54803ull};
  const struct {
    std::uint64_t tag;
    const std::uint64_t* expected;
  } cases[] = {{0, tag0}, {1, tag1}, {42, tag42}};
  for (const auto& c : cases) {
    Rng parent(1);  // fresh parent per fork: the sweep engine's derivation
    Rng child = parent.fork(c.tag);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(child.next(), c.expected[i]);
  }
}

TEST(Rng, ForkTagsDecorrelatePairwise) {
  // Streams forked from the same parent seed under different tags (the
  // per-cell streams of one sweep) must not collide or correlate.
  constexpr std::size_t kStreams = 16;
  constexpr std::size_t kDraws = 64;
  std::vector<std::vector<std::uint64_t>> streams;
  for (std::size_t tag = 0; tag < kStreams; ++tag) {
    Rng parent(99);
    Rng child = parent.fork(tag);
    std::vector<std::uint64_t> draws;
    for (std::size_t i = 0; i < kDraws; ++i) draws.push_back(child.next());
    streams.push_back(std::move(draws));
  }
  for (std::size_t a = 0; a < kStreams; ++a) {
    for (std::size_t b = a + 1; b < kStreams; ++b) {
      int equal = 0;
      for (std::size_t i = 0; i < kDraws; ++i) {
        if (streams[a][i] == streams[b][i]) ++equal;
      }
      EXPECT_LT(equal, 3) << "streams " << a << " and " << b;
    }
  }
}

TEST(Rng, SplitMix64IsStable) {
  // Pin the constants so accidental edits to the mixer show up.
  EXPECT_EQ(splitmix64(0), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(splitmix64(1), 0x910A2DEC89025CC1ull);
}

}  // namespace
}  // namespace treeaa
