// Determinism and distribution sanity for the seeded Rng.
#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace treeaa {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW((void)rng.uniform(3, 2), std::invalid_argument);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, IndexRequiresNonEmpty) {
  Rng rng(3);
  EXPECT_THROW((void)rng.index(0), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(Rng, ShuffleSingleAndEmptyAreNoops) {
  Rng rng(5);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, PickReturnsElement) {
  Rng rng(9);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

TEST(Rng, ForkDecorrelates) {
  Rng a(1);
  Rng child1 = a.fork(1);
  Rng child2 = a.fork(1);  // same tag, but parent advanced — different seed
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.next() == child2.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, SplitMix64IsStable) {
  // Pin the constants so accidental edits to the mixer show up.
  EXPECT_EQ(splitmix64(0), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(splitmix64(1), 0x910A2DEC89025CC1ull);
}

}  // namespace
}  // namespace treeaa
