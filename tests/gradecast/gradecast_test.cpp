// Gradecast invariants G1-G3 under honest runs, scripted equivocators,
// silent leaders, fuzz garbage, and denial lists.
#include "gradecast/gradecast.h"

#include <gtest/gtest.h>

#include "gradecast/wire.h"
#include "sim/engine.h"
#include "sim/strategies.h"

namespace treeaa::gradecast {
namespace {

using sim::Engine;
using sim::Envelope;
using sim::Mailer;

/// Drives one BatchGradecast inside the engine.
class GradecastHost final : public sim::Process {
 public:
  GradecastHost(PartyId self, std::size_t n, std::size_t t, Bytes value,
                std::vector<bool> deny = {})
      : batch_(self, n, t, std::move(value), std::move(deny)) {}

  void on_round_begin(Round r, Mailer& out) override {
    if (r <= kRounds) batch_.on_step_begin(r - 1, out);
  }
  void on_round_end(Round r, std::span<const Envelope> inbox) override {
    if (r <= kRounds) batch_.on_step_end(r - 1, inbox);
  }

  BatchGradecast batch_;
};

struct RunOutput {
  // results[p][l] = party p's graded output for leader l (honest p only).
  std::vector<std::vector<GradedValue>> results;
  std::vector<bool> corrupt;
};

RunOutput run_batch(std::size_t n, std::size_t t,
                    const std::vector<Bytes>& values,
                    std::unique_ptr<sim::Adversary> adversary = nullptr,
                    const std::vector<std::vector<bool>>& denies = {}) {
  Engine engine(n, std::max<std::size_t>(t, 1));
  std::vector<GradecastHost*> hosts(n);
  for (PartyId p = 0; p < n; ++p) {
    auto host = std::make_unique<GradecastHost>(
        p, n, t, values[p], denies.empty() ? std::vector<bool>{} : denies[p]);
    hosts[p] = host.get();
    engine.set_process(p, std::move(host));
  }
  if (adversary) engine.set_adversary(std::move(adversary));
  engine.run(kRounds);
  RunOutput out;
  out.results.resize(n);
  out.corrupt.resize(n);
  for (PartyId p = 0; p < n; ++p) {
    out.corrupt[p] = engine.is_corrupt(p);
    if (!out.corrupt[p]) out.results[p] = hosts[p]->batch_.results();
  }
  return out;
}

std::vector<Bytes> tagged_values(std::size_t n) {
  std::vector<Bytes> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = Bytes{static_cast<uint8_t>(i)};
  return v;
}

/// Checks G1-G3 for every leader across all honest parties.
void check_graded_consistency(const RunOutput& out, std::size_t n) {
  for (PartyId l = 0; l < n; ++l) {
    int max_grade = 0, min_grade = 2;
    const Bytes* value_seen = nullptr;
    for (PartyId p = 0; p < n; ++p) {
      if (out.corrupt[p]) continue;
      const GradedValue& gv = out.results[p][l];
      max_grade = std::max(max_grade, gv.grade);
      min_grade = std::min(min_grade, gv.grade);
      EXPECT_EQ(gv.grade >= 1, gv.value.has_value());
      if (gv.grade >= 1) {
        if (value_seen) {
          EXPECT_EQ(*gv.value, *value_seen)
              << "G3 violated for leader " << l;  // value binding
        }
        value_seen = &*gv.value;
      }
    }
    EXPECT_LE(max_grade - min_grade, 1) << "graded agreement for leader "
                                        << l;  // G2 corollary
    if (max_grade == 2) {
      EXPECT_GE(min_grade, 1) << "G2 violated for leader " << l;
    }
  }
}

// --- Honest executions -------------------------------------------------------

TEST(Gradecast, AllHonestEveryoneGradesTwo) {
  const std::size_t n = 4, t = 1;
  const auto out = run_batch(n, t, tagged_values(n));
  for (PartyId p = 0; p < n; ++p) {
    for (PartyId l = 0; l < n; ++l) {
      EXPECT_EQ(out.results[p][l].grade, 2);
      EXPECT_EQ(*out.results[p][l].value, Bytes{static_cast<uint8_t>(l)});
    }
  }
}

TEST(Gradecast, WorksAtLargerScale) {
  const std::size_t n = 13, t = 4;
  const auto out = run_batch(n, t, tagged_values(n));
  for (PartyId p = 0; p < n; ++p) {
    for (PartyId l = 0; l < n; ++l) {
      EXPECT_EQ(out.results[p][l].grade, 2);
    }
  }
  check_graded_consistency(out, n);
}

TEST(Gradecast, EmptyValueIsLegal) {
  const std::size_t n = 4, t = 1;
  std::vector<Bytes> values(n);  // all empty
  const auto out = run_batch(n, t, values);
  for (PartyId p = 0; p < n; ++p) {
    EXPECT_EQ(out.results[p][0].grade, 2);
    EXPECT_TRUE(out.results[p][0].value->empty());
  }
}

TEST(Gradecast, RejectsBadParameters) {
  EXPECT_THROW(BatchGradecast(0, 3, 1, {}), std::invalid_argument);   // n=3t
  EXPECT_THROW(BatchGradecast(5, 4, 1, {}), std::invalid_argument);   // self
  EXPECT_THROW(BatchGradecast(0, 4, 1, {}, std::vector<bool>(3)),
               std::invalid_argument);  // deny size mismatch
}

TEST(Gradecast, StepsMustRunInOrder) {
  BatchGradecast b(0, 4, 1, Bytes{1});
  std::vector<Envelope> sink;
  Mailer m(0, 4, sink, 1);
  EXPECT_THROW(b.on_step_begin(1, m), std::invalid_argument);
  EXPECT_THROW((void)b.results(), InternalError);
}

// --- Faulty leaders ----------------------------------------------------------

TEST(Gradecast, SilentLeaderGradesZeroEverywhere) {
  const std::size_t n = 4, t = 1;
  auto adv = std::make_unique<sim::SilentAdversary>(std::vector<PartyId>{2});
  const auto out = run_batch(n, t, tagged_values(n), std::move(adv));
  for (PartyId p = 0; p < n; ++p) {
    if (out.corrupt[p]) continue;
    EXPECT_EQ(out.results[p][2].grade, 0);
    EXPECT_FALSE(out.results[p][2].value.has_value());
    // Other leaders unaffected.
    EXPECT_EQ(out.results[p][0].grade, 2);
  }
  check_graded_consistency(out, n);
}

/// Leader 0 sends value A to the first half of parties and B to the rest,
/// then participates honestly in echo/support for its own instance.
class EquivocatingLeader final : public sim::Adversary {
 public:
  explicit EquivocatingLeader(std::size_t n) : n_(n) {}

  void init(sim::RoundView& view) override { view.corrupt(0); }

  void act(sim::RoundView& view) override {
    const Bytes a{0xAA}, b{0xBB};
    switch (view.round()) {
      case 1:
        for (PartyId p = 0; p < n_; ++p) {
          view.send(0, p, encode_leader(p < n_ / 2 ? a : b));
        }
        break;
      case 2: {
        // Echo its own split truthfully-per-recipient (keeps the split
        // alive); echo honest leaders truthfully.
        for (PartyId p = 0; p < n_; ++p) {
          std::vector<Slot> slots(n_);
          slots[0] = p < n_ / 2 ? a : b;
          for (PartyId l = 1; l < n_; ++l) {
            slots[l] = Bytes{static_cast<uint8_t>(l)};
          }
          view.send(0, p, encode_slots(kTagEcho, slots));
        }
        break;
      }
      case 3: {
        for (PartyId p = 0; p < n_; ++p) {
          std::vector<Slot> slots(n_);
          slots[0] = p < n_ / 2 ? a : b;
          for (PartyId l = 1; l < n_; ++l) {
            slots[l] = Bytes{static_cast<uint8_t>(l)};
          }
          view.send(0, p, encode_slots(kTagSupport, slots));
        }
        break;
      }
      default:
        break;
    }
  }

  std::size_t n_;
};

TEST(Gradecast, EquivocatingLeaderIsDetectedBySomeHonestParty) {
  for (std::size_t n : {4u, 7u, 10u, 13u}) {
    const std::size_t t = (n - 1) / 3;
    const auto out = run_batch(n, t, tagged_values(n),
                               std::make_unique<EquivocatingLeader>(n));
    // G1-G3 must survive the equivocation...
    check_graded_consistency(out, n);
    // ...and the equivocator cannot earn a uniform grade 2: the minority
    // camp sees at most the majority camp's honest supports, which stay
    // below n - t, so at least one honest party ends at grade <= 1 — the
    // detection event RealAA's deny mechanism is built on.
    int min_grade = 2;
    for (PartyId p = 0; p < n; ++p) {
      if (out.corrupt[p]) continue;
      min_grade = std::min(min_grade, out.results[p][0].grade);
    }
    EXPECT_LE(min_grade, 1) << "n=" << n;
  }
}

TEST(Gradecast, LeaderCrashingMidBatchKeepsInvariants) {
  // The leader's value went out in round 1; the leader crashes during the
  // echo round (round 2), half its echoes delivered. Everything must still
  // be gradedly consistent — a crash is just a weak Byzantine behaviour.
  for (const double kept : {0.0, 0.5, 1.0}) {
    const std::size_t n = 7, t = 2;
    auto adv = std::make_unique<sim::CrashAdversary>(
        std::vector<sim::CrashAdversary::Crash>{{3, 2, kept}});
    const auto out = run_batch(n, t, tagged_values(n), std::move(adv));
    check_graded_consistency(out, n);
    // Other leaders are unaffected.
    for (PartyId p = 0; p < n; ++p) {
      if (out.corrupt[p]) continue;
      EXPECT_EQ(out.results[p][0].grade, 2) << "kept " << kept;
    }
  }
}

// --- Garbage and duplicates --------------------------------------------------

TEST(Gradecast, FuzzGarbageNeverBreaksInvariants) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const std::size_t n = 7, t = 2;
    auto adv = std::make_unique<sim::FuzzAdversary>(
        std::vector<PartyId>{1, 5}, seed, /*messages_per_round=*/20,
        /*max_payload=*/40);
    const auto out = run_batch(n, t, tagged_values(n), std::move(adv));
    check_graded_consistency(out, n);
    // Honest leaders always deliver at grade 2 despite the noise (G1).
    for (PartyId p = 0; p < n; ++p) {
      if (out.corrupt[p]) continue;
      for (PartyId l = 0; l < n; ++l) {
        if (l == 1 || l == 5) continue;
        EXPECT_EQ(out.results[p][l].grade, 2) << "seed " << seed;
        EXPECT_EQ(*out.results[p][l].value, Bytes{static_cast<uint8_t>(l)});
      }
    }
  }
}

TEST(Gradecast, StaleReplaysNeverBreakInvariants) {
  // Replayed leader/echo/support messages from earlier rounds are
  // well-formed; the step-tag check plus round-scoped delivery must keep
  // them from corrupting grades.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::size_t n = 7, t = 2;
    auto adv = std::make_unique<sim::ReplayAdversary>(
        std::vector<PartyId>{0, 4}, seed, /*messages_per_round=*/20);
    const auto out = run_batch(n, t, tagged_values(n), std::move(adv));
    check_graded_consistency(out, n);
    for (PartyId p = 0; p < n; ++p) {
      if (out.corrupt[p]) continue;
      for (PartyId l = 0; l < n; ++l) {
        if (l == 0 || l == 4) continue;
        EXPECT_EQ(out.results[p][l].grade, 2) << "seed " << seed;
      }
    }
  }
}

/// Sends a valid-looking duplicate leader message with a different value
/// after the honest one — the first valid message must win.
class DuplicateInjector final : public sim::Adversary {
 public:
  void init(sim::RoundView& view) override { view.corrupt(3); }
  void act(sim::RoundView& view) override {
    if (view.round() != 1) return;
    // Leader 3 first sends X to all, then a conflicting duplicate Y.
    view.broadcast(3, encode_leader(Bytes{0x01}));
    view.broadcast(3, encode_leader(Bytes{0x02}));
  }
};

TEST(Gradecast, FirstValidLeaderMessageWins) {
  const std::size_t n = 4, t = 1;
  const auto out =
      run_batch(n, t, tagged_values(n), std::make_unique<DuplicateInjector>());
  for (PartyId p = 0; p < n; ++p) {
    if (out.corrupt[p]) continue;
    EXPECT_EQ(out.results[p][3].grade, 2);
    EXPECT_EQ(*out.results[p][3].value, Bytes{0x01});
  }
}

// --- Denial ------------------------------------------------------------------

TEST(Gradecast, DenialByTplusOneHonestKillsLeader) {
  const std::size_t n = 7, t = 2;
  // t + 1 = 3 honest parties deny leader 6.
  std::vector<std::vector<bool>> denies(n, std::vector<bool>(n, false));
  for (PartyId p = 0; p < 3; ++p) denies[p][6] = true;
  const auto out = run_batch(n, t, tagged_values(n), nullptr, denies);
  for (PartyId p = 0; p < n; ++p) {
    EXPECT_EQ(out.results[p][6].grade, 0) << "party " << p;
  }
  check_graded_consistency(out, n);
}

TEST(Gradecast, DenialByFewerThanTplusOneIsHarmless) {
  const std::size_t n = 7, t = 2;
  std::vector<std::vector<bool>> denies(n, std::vector<bool>(n, false));
  denies[0][6] = true;
  denies[1][6] = true;  // only 2 = t deniers
  const auto out = run_batch(n, t, tagged_values(n), nullptr, denies);
  for (PartyId p = 0; p < n; ++p) {
    EXPECT_EQ(out.results[p][6].grade, 2) << "party " << p;
  }
}

// --- Wire format -------------------------------------------------------------

TEST(GradecastWire, LeaderRoundTrip) {
  const Bytes v{1, 2, 3};
  EXPECT_EQ(*decode_leader(encode_leader(v)), v);
}

TEST(GradecastWire, LeaderRejectsWrongTagAndTrailing) {
  Bytes msg = encode_leader(Bytes{1});
  msg[0] = kTagEcho;
  EXPECT_FALSE(decode_leader(msg).has_value());
  Bytes trailing = encode_leader(Bytes{1});
  trailing.push_back(0);
  EXPECT_FALSE(decode_leader(trailing).has_value());
  EXPECT_FALSE(decode_leader(Bytes{}).has_value());
}

TEST(GradecastWire, SlotsRoundTrip) {
  std::vector<Slot> slots{Bytes{1}, std::nullopt, Bytes{}, Bytes{9, 9}};
  const Bytes msg = encode_slots(kTagSupport, slots);
  const auto decoded = decode_slots(kTagSupport, msg, 4);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, slots);
}

TEST(GradecastWire, SlotsRejectWrongArity) {
  std::vector<Slot> slots{Bytes{1}, Bytes{2}};
  const Bytes msg = encode_slots(kTagEcho, slots);
  EXPECT_FALSE(decode_slots(kTagEcho, msg, 3).has_value());
  EXPECT_FALSE(decode_slots(kTagSupport, msg, 2).has_value());  // wrong tag
}

TEST(GradecastWire, SlotsRejectGarbage) {
  EXPECT_FALSE(decode_slots(kTagEcho, Bytes{kTagEcho, 0xFF, 0xFF}, 4)
                   .has_value());
  EXPECT_FALSE(decode_slots(kTagEcho, Bytes{}, 4).has_value());
}

}  // namespace
}  // namespace treeaa::gradecast
