// Adversarial decoding: the gradecast codecs against truncated, oversized
// and random-garbage byte strings. Byzantine parties inject arbitrary
// bytes, so a decoder that throws, over-reads or crashes on any input is a
// protocol bug — malformed must always mean nullopt.
#include <gtest/gtest.h>

#include <cstddef>

#include "common/rng.h"
#include "gradecast/wire.h"

namespace treeaa::gradecast {
namespace {

TEST(GradecastWireFuzz, LeaderRoundTripSurvivesTruncation) {
  const Bytes value{10, 20, 30, 40, 50};
  const Bytes msg = encode_leader(value);
  ASSERT_EQ(decode_leader(msg), value);
  // Every strict prefix is malformed, never a crash or a partial value.
  for (std::size_t len = 0; len < msg.size(); ++len) {
    const Bytes prefix(msg.begin(), msg.begin() + static_cast<long>(len));
    EXPECT_EQ(decode_leader(prefix), std::nullopt) << "prefix length " << len;
  }
}

TEST(GradecastWireFuzz, LeaderRejectsTrailingAndOversizedLength) {
  Bytes msg = encode_leader(Bytes{1, 2, 3});
  msg.push_back(0);  // trailing byte
  EXPECT_EQ(decode_leader(msg), std::nullopt);

  // A length prefix promising more bytes than the buffer holds.
  ByteWriter w;
  w.u8(kTagLeader);
  w.varint(1'000'000);
  w.u8(7);
  EXPECT_EQ(decode_leader(std::move(w).take()), std::nullopt);

  EXPECT_EQ(decode_leader(Bytes{}), std::nullopt);
  EXPECT_EQ(decode_leader(Bytes{kTagEcho, 0}), std::nullopt);  // wrong tag
}

TEST(GradecastWireFuzz, SlotsRoundTripSurvivesTruncation) {
  const std::size_t n = 4;
  const std::vector<Slot> slots{Bytes{1, 2}, std::nullopt, Bytes{},
                                Bytes{9, 9, 9}};
  const Bytes msg = encode_slots(kTagEcho, slots);
  ASSERT_EQ(decode_slots(kTagEcho, msg, n), slots);
  for (std::size_t len = 0; len < msg.size(); ++len) {
    const Bytes prefix(msg.begin(), msg.begin() + static_cast<long>(len));
    EXPECT_EQ(decode_slots(kTagEcho, prefix, n), std::nullopt)
        << "prefix length " << len;
  }
}

TEST(GradecastWireFuzz, SlotsRejectWrongArityAndTag) {
  const std::vector<Slot> slots{Bytes{1}, std::nullopt, Bytes{2}};
  const Bytes msg = encode_slots(kTagSupport, slots);
  EXPECT_EQ(decode_slots(kTagEcho, msg, 3), std::nullopt);     // wrong tag
  EXPECT_EQ(decode_slots(kTagSupport, msg, 4), std::nullopt);  // too few
  EXPECT_EQ(decode_slots(kTagSupport, msg, 2), std::nullopt);  // too many

  // A slot-count prefix far above n must be rejected before any attempt to
  // allocate or read that many slots.
  ByteWriter w;
  w.u8(kTagEcho);
  w.varint(1u << 30);
  EXPECT_EQ(decode_slots(kTagEcho, std::move(w).take(), 4), std::nullopt);
}

TEST(GradecastWireFuzz, RandomGarbageNeverDecodesLeaderDangerously) {
  Rng rng(0xC0DEC);
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes msg(rng.index(64), 0);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next() & 0xFF);
    // Must not throw; a successful decode must re-encode to the same bytes
    // (the codec admits exactly its own canonical encodings).
    const auto value = decode_leader(msg);
    if (value.has_value()) {
      EXPECT_EQ(encode_leader(*value), msg);
    }
  }
}

TEST(GradecastWireFuzz, RandomGarbageNeverDecodesSlotsDangerously) {
  Rng rng(0x51075);
  const std::size_t n = 5;
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes msg(rng.index(96), 0);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next() & 0xFF);
    const auto slots = decode_slots(kTagEcho, msg, n);
    if (slots.has_value()) {
      ASSERT_EQ(slots->size(), n);
      EXPECT_EQ(encode_slots(kTagEcho, *slots), msg);
    }
  }
}

TEST(GradecastWireFuzz, SlotsEncodingGoldenBytes) {
  // Pins the wire layout the batched SIMD encoder must reproduce: tag u8,
  // varint slot count, then per slot a presence u8 followed (when present)
  // by varint length + bytes. A dispatch-level change that altered any of
  // these bytes would break mixed-version deployments.
  std::vector<Slot> slots(3);
  slots[0] = Bytes{0xAA, 0xBB};
  slots[2] = Bytes{};  // present but empty — distinct from absent
  EXPECT_EQ(encode_slots(kTagEcho, slots),
            (Bytes{0x02, 3, 1, 2, 0xAA, 0xBB, 0, 1, 0}));
  EXPECT_EQ(encode_leader(Bytes{0x07}), (Bytes{0x01, 1, 0x07}));
}

TEST(GradecastWireFuzz, BitFlipsNeverCrashTheDecoder) {
  // The net fault plan's corrupt action flips payload bits; every single-bit
  // variant of a valid message must decode cleanly or fail cleanly.
  const Bytes msg =
      encode_slots(kTagEcho, {Bytes{1, 2, 3}, std::nullopt, Bytes{4}});
  for (std::size_t byte = 0; byte < msg.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = msg;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      (void)decode_slots(kTagEcho, flipped, 3);
      (void)decode_leader(flipped);
    }
  }
}

}  // namespace
}  // namespace treeaa::gradecast
