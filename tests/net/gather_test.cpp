// GatherBuffer: chunk coalescing, refcounted payload retention, and the
// flush loop over a real socketpair — including partial writes against a
// full kernel buffer and the byte-exactness of the reassembled stream.
#include "net/gather.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "perf/arena.h"

namespace treeaa::net {
namespace {

// Drains everything currently readable from `sock` into `out`.
void drain(Socket& sock, Bytes& out) {
  std::uint8_t buf[4096];
  while (true) {
    const Socket::ReadResult r = sock.read_some(buf, sizeof(buf));
    if (r.n == 0) break;
    out.insert(out.end(), buf, buf + r.n);
  }
}

TEST(GatherBuffer, StartsEmptyAndTracksSize) {
  GatherBuffer buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  const std::uint8_t header[] = {1, 2, 3};
  buf.append(header, sizeof(header));
  buf.append(header, 2);  // coalesces; size is what matters
  EXPECT_FALSE(buf.empty());
  EXPECT_EQ(buf.size(), 5u);
  buf.append_owned(Bytes{9, 9});
  buf.append_payload(perf::Payload{Bytes{7}});
  buf.append_payload(perf::Payload{});  // empty payloads are dropped
  EXPECT_EQ(buf.size(), 8u);
  buf.clear();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
}

TEST(GatherBuffer, FlushDeliversChunksInOrderByteExact) {
  auto [a, b] = make_socket_pair();
  GatherBuffer buf;
  // Interleave the three append flavors the send paths use: copied frame
  // headers, moved owned bytes, and refcounted payloads.
  Bytes expected;
  const std::uint8_t h1[] = {0x10, 0x11};
  buf.append(h1, sizeof(h1));
  expected.insert(expected.end(), h1, h1 + sizeof(h1));

  const perf::Payload payload{Bytes(100, 0xAB)};
  buf.append_payload(payload);
  expected.insert(expected.end(), payload.bytes().begin(),
                  payload.bytes().end());

  buf.append_owned(Bytes{0x20, 0x21, 0x22});
  expected.insert(expected.end(), {0x20, 0x21, 0x22});

  const std::uint8_t h2[] = {0x30};
  buf.append(h2, sizeof(h2));
  expected.push_back(0x30);

  ASSERT_EQ(buf.size(), expected.size());
  while (!buf.empty()) {
    ASSERT_GT(buf.flush(a), 0u);
  }
  Bytes got;
  drain(b, got);
  EXPECT_EQ(got, expected);
}

TEST(GatherBuffer, FlushReleasesPayloadReferences) {
  auto [a, b] = make_socket_pair();
  GatherBuffer buf;
  perf::Payload payload{Bytes(64, 0x42)};
  ASSERT_EQ(payload.use_count(), 1u);
  buf.append_payload(payload);
  EXPECT_EQ(payload.use_count(), 2u);  // retained, not copied
  while (!buf.empty()) {
    ASSERT_GT(buf.flush(a), 0u);
  }
  // The handle is released once the bytes have reached the kernel.
  EXPECT_EQ(payload.use_count(), 1u);
}

TEST(GatherBuffer, PartialWritesAdvanceThroughKernelBackpressure) {
  auto [a, b] = make_socket_pair();
  GatherBuffer buf;
  // Far more than an AF_UNIX kernel buffer holds: many chunks so the flush
  // loop has to cut both between chunks and mid-chunk, plus enough chunks
  // to exceed one iovec batch (kMaxIov) per flush call.
  Bytes expected;
  for (std::uint32_t i = 0; i < 200; ++i) {
    Bytes chunk(4096);
    for (std::size_t j = 0; j < chunk.size(); ++j) {
      chunk[j] = static_cast<std::uint8_t>(i * 31 + j);
    }
    expected.insert(expected.end(), chunk.begin(), chunk.end());
    if (i % 2 == 0) {
      buf.append_payload(perf::Payload{std::move(chunk)});
    } else {
      buf.append_owned(std::move(chunk));
    }
  }
  ASSERT_EQ(buf.size(), expected.size());

  Bytes got;
  bool saw_kernel_full = false;
  while (!buf.empty()) {
    const std::size_t wrote = buf.flush(a);
    if (wrote == 0) {
      saw_kernel_full = true;
      drain(b, got);  // make room, then flush again
    }
  }
  drain(b, got);
  EXPECT_TRUE(saw_kernel_full) << "test never hit backpressure; grow the "
                                  "write volume";
  EXPECT_EQ(got.size(), expected.size());
  EXPECT_EQ(got, expected);
}

TEST(GatherBuffer, GatherStreamReassemblesThroughFrameReader) {
  // End-to-end shape of the runtime's send path: zero-copy headers plus
  // payload chunks, flushed through a socket, reassembled by the receiving
  // FrameReader — with a barrier frame in between, exactly like a round.
  auto [a, b] = make_socket_pair();
  GatherBuffer buf;

  const perf::Payload msg{Bytes(150, 0x5C)};
  Bytes header;
  append_data_frame_header(header, 3, msg.size());
  buf.append(header.data(), header.size());
  buf.append_payload(msg);

  Bytes barrier;
  append_wire_frame(barrier, Frame{FrameKind::kBarrier, 3, {}});
  buf.append(barrier.data(), barrier.size());

  while (!buf.empty()) {
    ASSERT_GT(buf.flush(a), 0u);
  }

  Bytes raw;
  drain(b, raw);
  FrameReader reader;
  reader.feed(raw.data(), raw.size());

  const auto first = reader.next_body();
  ASSERT_TRUE(first.has_value());
  const auto data = decode_frame_body(*first);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->kind, FrameKind::kData);
  EXPECT_EQ(data->round, 3u);
  EXPECT_EQ(data->payload, msg.bytes());

  const auto second = reader.next_body();
  ASSERT_TRUE(second.has_value());
  const auto ctrl = decode_frame_body(*second);
  ASSERT_TRUE(ctrl.has_value());
  EXPECT_EQ(ctrl->kind, FrameKind::kBarrier);
  EXPECT_EQ(ctrl->round, 3u);
  EXPECT_FALSE(reader.next_body().has_value());
  EXPECT_EQ(reader.buffered(), 0u);
}

}  // namespace
}  // namespace treeaa::net
