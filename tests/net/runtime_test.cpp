// The socket runtime against the discrete engine: identical delivery on a
// clean mesh, deterministic fault accounting, barrier-timeout liveness.
#include "net/runtime.h"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <thread>

#include "obs/metrics.h"
#include "sim/engine.h"

namespace treeaa::net {
namespace {

/// Broadcasts [self, round] every round and records everything received.
class ChatterProcess : public sim::Process {
 public:
  void on_round_begin(Round r, sim::Mailer& out) override {
    ByteWriter w;
    w.varint(out.self());
    w.varint(r);
    out.broadcast(w.bytes());
  }

  void on_round_end(Round r, std::span<const sim::Envelope> inbox) override {
    for (const sim::Envelope& e : inbox) {
      received_[r].emplace_back(e.from, e.payload);
    }
  }

  std::map<Round, std::vector<std::pair<PartyId, Bytes>>> received_;
};

/// Chatter that additionally sleeps before sending in one round, stalling
/// its barrier past its peers' deadline.
class SlowChatterProcess final : public ChatterProcess {
 public:
  SlowChatterProcess(Round slow_round, int sleep_ms)
      : slow_round_(slow_round), sleep_ms_(sleep_ms) {}

  void on_round_begin(Round r, sim::Mailer& out) override {
    if (r == slow_round_) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms_));
    }
    ChatterProcess::on_round_begin(r, out);
  }

 private:
  Round slow_round_;
  int sleep_ms_;
};

TEST(NetRunner, CleanMeshMatchesEngineDelivery) {
  const std::size_t n = 5;
  const Round rounds = 6;

  NetRunner runner(n, NetOptions{});
  for (PartyId p = 0; p < n; ++p) {
    runner.set_process(p, std::make_unique<ChatterProcess>());
  }
  runner.run(rounds);

  sim::Engine engine(n, 1);
  for (PartyId p = 0; p < n; ++p) {
    engine.set_process(p, std::make_unique<ChatterProcess>());
  }
  engine.run(rounds);

  for (PartyId p = 0; p < n; ++p) {
    const auto& net = dynamic_cast<ChatterProcess&>(runner.process(p));
    const auto& ref = dynamic_cast<ChatterProcess&>(engine.process(p));
    ASSERT_EQ(net.received_, ref.received_) << "party " << p;
    EXPECT_EQ(runner.party_stats(p).rounds_completed, rounds);
    EXPECT_EQ(runner.party_stats(p).timeouts, 0u);
  }
  const LinkStats totals = runner.totals();
  // n * (n-1) directed links, one data frame each per round.
  EXPECT_EQ(totals.frames_sent, n * (n - 1) * rounds);
  EXPECT_EQ(totals.frames_sent, totals.frames_received - totals.frames_sent)
      << "every link also carries one barrier per round";
  EXPECT_EQ(totals.dropped + totals.stale_discarded + totals.decode_errors,
            0u);
}

TEST(NetRunner, CleanDeployMakesZeroPayloadCopies) {
  // The zero-copy acceptance gate: on a fault-free mesh no payload byte is
  // ever copied on the send path — frames go header + refcounted payload
  // straight to sendmsg. A regression that reintroduces a copy shows up
  // here as a nonzero counter, not as a silent slowdown.
  const std::size_t n = 4;
  const Round rounds = 5;
  NetRunner runner(n, NetOptions{});
  for (PartyId p = 0; p < n; ++p) {
    runner.set_process(p, std::make_unique<ChatterProcess>());
  }
  runner.run(rounds);
  EXPECT_GT(runner.totals().frames_sent, 0u);
  EXPECT_EQ(runner.totals().payload_copies, 0u);
  obs::Registry registry;
  runner.fill_registry(registry);
  EXPECT_EQ(registry.counter("net_payload_copies").value(), 0u);
}

TEST(NetRunner, CorruptLinksStillDetachSharedBroadcasts) {
  // The one legitimate send-path copy: a corrupting link must detach its
  // private copy of a broadcast payload before flipping bits, so every
  // other link still transmits the pristine bytes. The counter prices
  // exactly those detaches and nothing else.
  const std::size_t n = 4;
  const Round rounds = 8;
  NetOptions options;
  options.faults = FaultPlan::parse("corrupt=0.5");
  options.seed = 5;
  NetRunner runner(n, options);
  for (PartyId p = 0; p < n; ++p) {
    runner.set_process(p, std::make_unique<ChatterProcess>());
  }
  runner.run(rounds);
  const LinkStats totals = runner.totals();
  EXPECT_GT(totals.corrupted, 0u);
  EXPECT_GT(totals.payload_copies, 0u);
  // Never more copies than corruptions — a sole-owner corrupt flips in
  // place for free.
  EXPECT_LE(totals.payload_copies, totals.corrupted);
  obs::Registry registry;
  runner.fill_registry(registry);
  EXPECT_EQ(registry.counter("net_payload_copies").value(),
            totals.payload_copies);
}

TEST(NetRunner, FaultCountersAreSeedDeterministic) {
  const std::size_t n = 4;
  const Round rounds = 8;
  NetOptions options;
  options.faults =
      FaultPlan::parse("drop=0.2,delay=0.2,dup=0.2,corrupt=0.2,reorder=0.5");
  options.seed = 77;

  const auto run_once = [&] {
    NetRunner runner(n, options);
    for (PartyId p = 0; p < n; ++p) {
      runner.set_process(p, std::make_unique<ChatterProcess>());
    }
    runner.run(rounds);
    return runner.totals();
  };
  const LinkStats a = run_once();
  const LinkStats b = run_once();
  EXPECT_GT(a.dropped, 0u);
  EXPECT_GT(a.delayed, 0u);
  EXPECT_GT(a.duplicated, 0u);
  EXPECT_GT(a.corrupted, 0u);
  // A delayed frame surfaces behind its barrier and is discarded — unless
  // its due round lies past the horizon and it stays in holdback forever.
  EXPECT_LE(a.stale_discarded, a.delayed);
  EXPECT_GT(a.stale_discarded, 0u);
  EXPECT_EQ(a.stale_discarded, b.stale_discarded);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.delayed, b.delayed);
  EXPECT_EQ(a.duplicated, b.duplicated);
  EXPECT_EQ(a.corrupted, b.corrupted);
  EXPECT_EQ(a.frames_sent, b.frames_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
}

TEST(NetRunner, PlanCrashedPartyCausesNoTimeouts) {
  const std::size_t n = 4;
  const Round rounds = 6;
  NetOptions options;
  options.faults = FaultPlan::parse("crash=1@3");
  options.round_timeout_ms = 200;

  NetRunner runner(n, options);
  for (PartyId p = 0; p < n; ++p) {
    runner.set_process(p, std::make_unique<ChatterProcess>());
  }
  runner.run(rounds);

  // The plan is public: peers skip the crashed party's barrier instead of
  // burning the deadline, so the run is deterministic and timeout-free.
  for (PartyId p = 0; p < n; ++p) {
    EXPECT_EQ(runner.party_stats(p).timeouts, 0u);
    EXPECT_EQ(runner.party_stats(p).rounds_completed, rounds);
  }
  EXPECT_EQ(runner.totals().suppressed, (n - 1) * (rounds - 2));
  // The crashed party still hears everyone; peers stop hearing it from its
  // crash round on.
  const auto& crashed = dynamic_cast<ChatterProcess&>(runner.process(1));
  const auto& peer = dynamic_cast<ChatterProcess&>(runner.process(0));
  EXPECT_EQ(crashed.received_.at(rounds).size(), n);
  EXPECT_EQ(peer.received_.at(2).size(), n);
  EXPECT_EQ(peer.received_.at(3).size(), n - 1);
}

TEST(NetRunner, UnplannedStallTripsTheDeadline) {
  const std::size_t n = 3;
  const Round rounds = 3;
  NetOptions options;
  options.round_timeout_ms = 150;

  NetRunner runner(n, options);
  runner.set_process(0, std::make_unique<ChatterProcess>());
  runner.set_process(1, std::make_unique<SlowChatterProcess>(2, 600));
  runner.set_process(2, std::make_unique<ChatterProcess>());
  runner.run(rounds);

  // Both live peers evicted the stalled party exactly once and completed
  // the full round budget regardless.
  EXPECT_GE(runner.party_stats(0).timeouts, 1u);
  EXPECT_GE(runner.party_stats(2).timeouts, 1u);
  for (PartyId p = 0; p < n; ++p) {
    EXPECT_EQ(runner.party_stats(p).rounds_completed, rounds);
  }
}

TEST(NetRunner, RunIsSingleShot) {
  NetRunner runner(2, NetOptions{});
  runner.set_process(0, std::make_unique<ChatterProcess>());
  runner.set_process(1, std::make_unique<ChatterProcess>());
  runner.run(1);
  EXPECT_THROW(runner.run(1), std::invalid_argument);
}

TEST(NetRunner, RequiresAProcessPerParty) {
  NetRunner runner(2, NetOptions{});
  runner.set_process(0, std::make_unique<ChatterProcess>());
  EXPECT_THROW(runner.run(1), std::invalid_argument);
}

}  // namespace
}  // namespace treeaa::net
