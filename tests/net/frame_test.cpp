// Wire framing: body round-trips, malformed-body rejection, and the
// incremental FrameReader including its fail-closed poisoning.
#include "net/frame.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace treeaa::net {
namespace {

Bytes wire(const Frame& frame) {
  Bytes out;
  append_wire_frame(out, frame);
  return out;
}

TEST(FrameCodec, DataRoundTrips) {
  const Frame frame{FrameKind::kData, 17, Bytes{1, 2, 3, 0xFF}};
  const auto decoded = decode_frame_body(encode_frame_body(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, FrameKind::kData);
  EXPECT_EQ(decoded->round, 17u);
  EXPECT_EQ(decoded->payload, frame.payload);
}

TEST(FrameCodec, EmptyPayloadAndLargeRoundRoundTrip) {
  const Frame frame{FrameKind::kData, 0xFFFFFFFFu, Bytes{}};
  const auto decoded = decode_frame_body(encode_frame_body(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->round, 0xFFFFFFFFu);
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(FrameCodec, BarrierRoundTrips) {
  const Frame frame{FrameKind::kBarrier, 5, Bytes{}};
  const auto decoded = decode_frame_body(encode_frame_body(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, FrameKind::kBarrier);
  EXPECT_EQ(decoded->round, 5u);
}

TEST(FrameCodec, RejectsMalformedBodies) {
  EXPECT_FALSE(decode_frame_body(Bytes{}).has_value());       // empty
  EXPECT_FALSE(decode_frame_body(Bytes{0x07, 1}).has_value());  // bad kind
  // Truncated: data frame cut inside the payload blob.
  Bytes body = encode_frame_body(Frame{FrameKind::kData, 3, Bytes{9, 9, 9}});
  body.pop_back();
  EXPECT_FALSE(decode_frame_body(body).has_value());
  // Trailing garbage after a well-formed frame.
  body = encode_frame_body(Frame{FrameKind::kBarrier, 3, {}});
  body.push_back(0);
  EXPECT_FALSE(decode_frame_body(body).has_value());
}

TEST(FrameCodec, RejectsBarrierWithPayload) {
  // A barrier body is [kind][round] only; hand-build one with extra bytes.
  Bytes body = encode_frame_body(Frame{FrameKind::kBarrier, 1, {}});
  body.push_back(0x42);
  EXPECT_FALSE(decode_frame_body(body).has_value());
}

TEST(FrameReader, ReassemblesByteAtATime) {
  const Frame frame{FrameKind::kData, 9, Bytes{10, 20, 30}};
  const Bytes stream = wire(frame);
  FrameReader reader;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_FALSE(reader.next_body().has_value());
    reader.feed(&stream[i], 1);
  }
  const auto body = reader.next_body();
  ASSERT_TRUE(body.has_value());
  const auto decoded = decode_frame_body(*body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, frame.payload);
  EXPECT_FALSE(reader.next_body().has_value());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameReader, SplitsConcatenatedFrames) {
  Bytes stream;
  for (Round r = 1; r <= 4; ++r) {
    append_wire_frame(
        stream,
        Frame{FrameKind::kData, r, Bytes{static_cast<std::uint8_t>(r)}});
  }
  FrameReader reader;
  reader.feed(stream.data(), stream.size());
  for (Round r = 1; r <= 4; ++r) {
    const auto body = reader.next_body();
    ASSERT_TRUE(body.has_value());
    const auto decoded = decode_frame_body(*body);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->round, r);
  }
  EXPECT_FALSE(reader.next_body().has_value());
}

TEST(FrameReader, OversizedLengthPrefixPoisonsPermanently) {
  const std::uint32_t huge = kMaxFrameBody + 1;
  Bytes stream(4);
  std::memcpy(stream.data(), &huge, 4);
  FrameReader reader;
  reader.feed(stream.data(), stream.size());
  EXPECT_FALSE(reader.next_body().has_value());
  EXPECT_TRUE(reader.poisoned());
  // Feeding a perfectly valid frame afterwards cannot resurrect the stream.
  const Bytes good = wire(Frame{FrameKind::kBarrier, 1, {}});
  reader.feed(good.data(), good.size());
  EXPECT_FALSE(reader.next_body().has_value());
  EXPECT_TRUE(reader.poisoned());
}

TEST(SessionFrameCodec, RoundTrips) {
  SessionFrame frame;
  frame.session_id = 0xDEADBEEFCAFEull;  // forces a multi-byte varint
  frame.kind = 0x81;
  frame.payload = Bytes{1, 2, 3};
  const auto decoded = decode_session_frame_body(encode_session_frame_body(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->version, kSessionVersion);
  EXPECT_EQ(decoded->session_id, frame.session_id);
  EXPECT_EQ(decoded->kind, frame.kind);
  EXPECT_EQ(decoded->payload, frame.payload);
}

TEST(SessionFrameCodec, RejectsUnknownVersion) {
  // Fail closed: a future version gives no license to parse the rest of
  // the header, however well-formed it happens to look.
  SessionFrame frame;
  frame.session_id = 7;
  frame.kind = 0x01;
  Bytes body = encode_session_frame_body(frame);
  body[0] = kSessionVersion + 1;
  EXPECT_FALSE(decode_session_frame_body(body).has_value());
  body[0] = 0;
  EXPECT_FALSE(decode_session_frame_body(body).has_value());
}

TEST(SessionFrameCodec, RejectsTruncationAndTrailingBytes) {
  SessionFrame frame;
  frame.session_id = 300;  // two varint bytes
  frame.kind = 0x01;
  frame.payload = Bytes{9};
  const Bytes body = encode_session_frame_body(frame);
  // Every strict prefix — including cuts inside the header, before the
  // kind byte is even reachable — must decode to nullopt.
  for (std::size_t len = 0; len < body.size(); ++len) {
    const Bytes cut(body.begin(), body.begin() + static_cast<long>(len));
    EXPECT_FALSE(decode_session_frame_body(cut).has_value()) << len;
  }
  Bytes padded = body;
  padded.push_back(0);
  EXPECT_FALSE(decode_session_frame_body(padded).has_value());
}

TEST(FrameReader, ReassemblesSessionFramesByteAtATime) {
  // The serve plane feeds client sockets through the same reader; a
  // maximally fragmented stream must still yield both frames intact, and
  // a frame truncated mid-header must simply never surface.
  SessionFrame first;
  first.session_id = 1;
  first.kind = 0x01;
  first.payload = Bytes{42};
  SessionFrame second;
  second.session_id = 128;  // session id crosses the varint byte boundary
  second.kind = 0x82;
  Bytes stream;
  append_wire_session_frame(stream, first);
  append_wire_session_frame(stream, second);

  FrameReader reader;
  std::vector<SessionFrame> got;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    reader.feed(&stream[i], 1);
    while (true) {
      const auto body = reader.next_body();
      if (!body.has_value()) break;
      const auto frame = decode_session_frame_body(*body);
      ASSERT_TRUE(frame.has_value());
      got.push_back(*frame);
    }
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].session_id, 1u);
  EXPECT_EQ(got[0].payload, first.payload);
  EXPECT_EQ(got[1].session_id, 128u);
  EXPECT_EQ(got[1].kind, 0x82);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameReader, SessionFrameTruncatedMidHeaderFailsClosed) {
  // Fuzz-shaped regression: the wire stream ends (or the peer stalls)
  // inside the session header, after the length prefix promised more. The
  // reader must neither surface a body nor poison — and when the peer
  // completes the frame with a hostile version byte, the decode layer
  // rejects it rather than guessing at the tail's layout.
  SessionFrame frame;
  frame.session_id = 0x4000;  // three varint bytes: truncation cuts mid-id
  frame.kind = 0x01;
  frame.payload = Bytes{1, 2, 3, 4};
  Bytes stream;
  append_wire_session_frame(stream, frame);

  for (std::size_t cut = 4; cut < stream.size(); ++cut) {
    FrameReader reader;
    reader.feed(stream.data(), cut);
    EXPECT_FALSE(reader.next_body().has_value()) << cut;
    EXPECT_FALSE(reader.poisoned()) << cut;
    // The remaining bytes arrive, but with the version byte clobbered.
    Bytes tail(stream.begin() + static_cast<long>(cut), stream.end());
    if (cut == 4) tail[0] = 0x7F;  // the version byte is stream[4]
    reader.feed(tail.data(), tail.size());
    const auto body = reader.next_body();
    ASSERT_TRUE(body.has_value()) << cut;
    if (cut == 4) {
      EXPECT_FALSE(decode_session_frame_body(*body).has_value());
    } else {
      EXPECT_TRUE(decode_session_frame_body(*body).has_value());
    }
  }
}

TEST(FrameCodec, DataFrameHeaderPlusPayloadMatchesAppendWireFrame) {
  // The zero-copy contract: header bytes from append_data_frame_header
  // followed by the raw payload must be indistinguishable on the wire from
  // the copying encoder. Cover the varint length boundaries of both the
  // round and the payload blob.
  const std::vector<Round> rounds{0, 1, 127, 128, 0xFFFFFFFFu};
  const std::vector<Bytes> payloads{
      Bytes{}, Bytes{0x42}, Bytes(127, 0xAB), Bytes(128, 0xCD),
      Bytes(300, 0x11)};
  for (const Round round : rounds) {
    for (const Bytes& payload : payloads) {
      Bytes zero_copy;
      append_data_frame_header(zero_copy, round, payload.size());
      zero_copy.insert(zero_copy.end(), payload.begin(), payload.end());
      Bytes copying;
      append_wire_frame(copying, Frame{FrameKind::kData, round, payload});
      EXPECT_EQ(zero_copy, copying)
          << "round=" << round << " payload_size=" << payload.size();
    }
  }
}

TEST(SessionFrameCodec, HeaderPlusPayloadMatchesAppendWireSessionFrame) {
  const std::vector<std::uint64_t> ids{0, 1, 127, 128, 0x4000,
                                       0xDEADBEEFCAFEull};
  const std::vector<Bytes> payloads{Bytes{}, Bytes{7}, Bytes(200, 0x5A)};
  for (const std::uint64_t id : ids) {
    for (const Bytes& payload : payloads) {
      Bytes zero_copy;
      append_session_frame_header(zero_copy, id, 0x81, payload.size());
      zero_copy.insert(zero_copy.end(), payload.begin(), payload.end());
      SessionFrame frame;
      frame.session_id = id;
      frame.kind = 0x81;
      frame.payload = payload;
      Bytes copying;
      append_wire_session_frame(copying, frame);
      EXPECT_EQ(zero_copy, copying)
          << "id=" << id << " payload_size=" << payload.size();
    }
  }
}

TEST(FrameReader, GatherChunkBoundariesAreInvisibleToTheReader) {
  // The gather path hands the kernel a header region and a payload region
  // separately; partial sendmsg can cut the stream anywhere, including
  // inside the u32 length prefix or mid-header. Feed the reader the frame
  // split at every boundary and require the identical decode each time.
  const Bytes payload(64, 0x77);
  Bytes stream;
  append_data_frame_header(stream, 9, payload.size());
  const std::size_t header_len = stream.size();
  stream.insert(stream.end(), payload.begin(), payload.end());

  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    FrameReader reader;
    reader.feed(stream.data(), cut);
    if (cut < stream.size()) {
      EXPECT_FALSE(reader.next_body().has_value()) << "cut=" << cut;
      EXPECT_FALSE(reader.poisoned()) << "cut=" << cut;
      reader.feed(stream.data() + cut, stream.size() - cut);
    }
    const auto body = reader.next_body();
    ASSERT_TRUE(body.has_value()) << "cut=" << cut;
    const auto decoded = decode_frame_body(*body);
    ASSERT_TRUE(decoded.has_value()) << "cut=" << cut;
    EXPECT_EQ(decoded->round, 9u);
    EXPECT_EQ(decoded->payload, payload);
  }

  // A header whose length prefix promises more than kMaxFrameBody must
  // still poison, chunked arrival or not.
  Bytes oversized;
  append_data_frame_header(oversized, 1, kMaxFrameBody + 1);
  FrameReader reader;
  reader.feed(oversized.data(), 2);  // mid-prefix split
  reader.feed(oversized.data() + 2, oversized.size() - 2);
  EXPECT_FALSE(reader.next_body().has_value());
  EXPECT_TRUE(reader.poisoned());
  // Sanity: the truncation loop above actually exercised mid-header cuts.
  EXPECT_GT(header_len, 5u);
}

TEST(FrameReader, MaxBodySizeIsNotPoisonous) {
  // Exactly kMaxFrameBody must still be accepted — the cap covers the
  // engine's largest legal payload plus framing slack.
  const Bytes body(kMaxFrameBody, 0xAB);
  const auto len = static_cast<std::uint32_t>(body.size());
  Bytes prefix(4);
  std::memcpy(prefix.data(), &len, 4);
  FrameReader reader;
  reader.feed(prefix.data(), prefix.size());
  reader.feed(body.data(), body.size());
  EXPECT_FALSE(reader.poisoned());
  const auto got = reader.next_body();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), kMaxFrameBody);
}

}  // namespace
}  // namespace treeaa::net
