// Wire framing: body round-trips, malformed-body rejection, and the
// incremental FrameReader including its fail-closed poisoning.
#include "net/frame.h"

#include <gtest/gtest.h>

#include <cstring>

namespace treeaa::net {
namespace {

Bytes wire(const Frame& frame) {
  Bytes out;
  append_wire_frame(out, frame);
  return out;
}

TEST(FrameCodec, DataRoundTrips) {
  const Frame frame{FrameKind::kData, 17, Bytes{1, 2, 3, 0xFF}};
  const auto decoded = decode_frame_body(encode_frame_body(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, FrameKind::kData);
  EXPECT_EQ(decoded->round, 17u);
  EXPECT_EQ(decoded->payload, frame.payload);
}

TEST(FrameCodec, EmptyPayloadAndLargeRoundRoundTrip) {
  const Frame frame{FrameKind::kData, 0xFFFFFFFFu, Bytes{}};
  const auto decoded = decode_frame_body(encode_frame_body(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->round, 0xFFFFFFFFu);
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(FrameCodec, BarrierRoundTrips) {
  const Frame frame{FrameKind::kBarrier, 5, Bytes{}};
  const auto decoded = decode_frame_body(encode_frame_body(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, FrameKind::kBarrier);
  EXPECT_EQ(decoded->round, 5u);
}

TEST(FrameCodec, RejectsMalformedBodies) {
  EXPECT_FALSE(decode_frame_body(Bytes{}).has_value());       // empty
  EXPECT_FALSE(decode_frame_body(Bytes{0x07, 1}).has_value());  // bad kind
  // Truncated: data frame cut inside the payload blob.
  Bytes body = encode_frame_body(Frame{FrameKind::kData, 3, Bytes{9, 9, 9}});
  body.pop_back();
  EXPECT_FALSE(decode_frame_body(body).has_value());
  // Trailing garbage after a well-formed frame.
  body = encode_frame_body(Frame{FrameKind::kBarrier, 3, {}});
  body.push_back(0);
  EXPECT_FALSE(decode_frame_body(body).has_value());
}

TEST(FrameCodec, RejectsBarrierWithPayload) {
  // A barrier body is [kind][round] only; hand-build one with extra bytes.
  Bytes body = encode_frame_body(Frame{FrameKind::kBarrier, 1, {}});
  body.push_back(0x42);
  EXPECT_FALSE(decode_frame_body(body).has_value());
}

TEST(FrameReader, ReassemblesByteAtATime) {
  const Frame frame{FrameKind::kData, 9, Bytes{10, 20, 30}};
  const Bytes stream = wire(frame);
  FrameReader reader;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_FALSE(reader.next_body().has_value());
    reader.feed(&stream[i], 1);
  }
  const auto body = reader.next_body();
  ASSERT_TRUE(body.has_value());
  const auto decoded = decode_frame_body(*body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, frame.payload);
  EXPECT_FALSE(reader.next_body().has_value());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameReader, SplitsConcatenatedFrames) {
  Bytes stream;
  for (Round r = 1; r <= 4; ++r) {
    append_wire_frame(
        stream,
        Frame{FrameKind::kData, r, Bytes{static_cast<std::uint8_t>(r)}});
  }
  FrameReader reader;
  reader.feed(stream.data(), stream.size());
  for (Round r = 1; r <= 4; ++r) {
    const auto body = reader.next_body();
    ASSERT_TRUE(body.has_value());
    const auto decoded = decode_frame_body(*body);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->round, r);
  }
  EXPECT_FALSE(reader.next_body().has_value());
}

TEST(FrameReader, OversizedLengthPrefixPoisonsPermanently) {
  const std::uint32_t huge = kMaxFrameBody + 1;
  Bytes stream(4);
  std::memcpy(stream.data(), &huge, 4);
  FrameReader reader;
  reader.feed(stream.data(), stream.size());
  EXPECT_FALSE(reader.next_body().has_value());
  EXPECT_TRUE(reader.poisoned());
  // Feeding a perfectly valid frame afterwards cannot resurrect the stream.
  const Bytes good = wire(Frame{FrameKind::kBarrier, 1, {}});
  reader.feed(good.data(), good.size());
  EXPECT_FALSE(reader.next_body().has_value());
  EXPECT_TRUE(reader.poisoned());
}

TEST(FrameReader, MaxBodySizeIsNotPoisonous) {
  // Exactly kMaxFrameBody must still be accepted — the cap covers the
  // engine's largest legal payload plus framing slack.
  const Bytes body(kMaxFrameBody, 0xAB);
  const auto len = static_cast<std::uint32_t>(body.size());
  Bytes prefix(4);
  std::memcpy(prefix.data(), &len, 4);
  FrameReader reader;
  reader.feed(prefix.data(), prefix.size());
  reader.feed(body.data(), body.size());
  EXPECT_FALSE(reader.poisoned());
  const auto got = reader.next_body();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), kMaxFrameBody);
}

}  // namespace
}  // namespace treeaa::net
