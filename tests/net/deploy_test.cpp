// End-to-end TreeAA deployments on the socket mesh: the sim cross-check,
// fault-budget accounting, crash handling, and report determinism.
#include "net/deploy.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "trees/generators.h"

namespace treeaa::net {
namespace {

std::vector<VertexId> spread_inputs(const LabeledTree& tree, std::size_t n) {
  std::vector<VertexId> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(static_cast<VertexId>((i * tree.n()) / n % tree.n()));
  }
  return inputs;
}

TEST(Deploy, CleanRunMatchesSimAndAgrees) {
  const auto tree = make_path(12);
  const auto inputs = spread_inputs(tree, 4);
  const auto result = run_tree_aa_net(tree, inputs, 1, DeployConfig{});
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.sim_match);
  EXPECT_TRUE(result.check.valid);
  EXPECT_TRUE(result.check.one_agreement);
  EXPECT_TRUE(result.corrupt.empty());
  EXPECT_TRUE(result.crashed.empty());
  for (PartyId p = 0; p < 4; ++p) {
    ASSERT_TRUE(result.outputs[p].has_value());
    EXPECT_EQ(result.outputs[p], result.sim_outputs[p]);
  }
  EXPECT_EQ(result.report.timeouts_total, 0u);
  EXPECT_TRUE(result.report.links.empty()) << "no faults fired";
}

TEST(Deploy, ByzantineFuzzWithLinkFaultsCrossChecks) {
  // One of the two t=2 budget slots is Byzantine; the other absorbs the
  // link faults (see docs/NET.md on the budget arithmetic).
  const auto tree = make_spider(4, 3);
  const auto inputs = spread_inputs(tree, 7);
  DeployConfig cfg;
  cfg.adversary = AdversaryKind::kFuzz;
  cfg.corrupt_count = 1;
  cfg.faults = FaultPlan::parse("dup=0.2,reorder=0.5");
  cfg.seed = 3;
  const auto result = run_tree_aa_net(tree, inputs, 2, cfg);
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.sim_match);
  ASSERT_EQ(result.corrupt.size(), 1u);
  EXPECT_FALSE(result.outputs[result.corrupt[0]].has_value());
  EXPECT_GT(result.report.totals.duplicated, 0u);
}

TEST(Deploy, SilentAdversaryCrossChecks) {
  const auto tree = make_star(9);
  const auto inputs = spread_inputs(tree, 4);
  DeployConfig cfg;
  cfg.adversary = AdversaryKind::kSilent;
  cfg.seed = 5;
  const auto result = run_tree_aa_net(tree, inputs, 1, cfg);
  EXPECT_TRUE(result.ok());
  ASSERT_EQ(result.corrupt.size(), 1u);
}

TEST(Deploy, CrashedPartyIsExcludedButConsistent) {
  const auto tree = make_path(12);
  const auto inputs = spread_inputs(tree, 4);
  DeployConfig cfg;
  cfg.faults = FaultPlan::parse("crash=2@3");
  cfg.round_timeout_ms = 400;
  const auto result = run_tree_aa_net(tree, inputs, 1, cfg);
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.sim_match);
  ASSERT_EQ(result.crashed, std::vector<PartyId>{2});
  // The crashed party is protocol-honest: it still terminates with an
  // output and matches the reference world, it is just not owed the
  // agreement guarantees.
  ASSERT_TRUE(result.outputs[2].has_value());
  EXPECT_EQ(result.outputs[2], result.sim_outputs[2]);
  // Plan-aware synchronization: no deadline was ever burned.
  EXPECT_EQ(result.report.timeouts_total, 0u);
  EXPECT_EQ(result.report.totals.stale_discarded, 0u);
  EXPECT_GT(result.report.totals.suppressed, 0u);
}

TEST(Deploy, ReportIsByteDeterministic) {
  const auto tree = make_caterpillar(6, 2);
  const auto inputs = spread_inputs(tree, 7);
  DeployConfig cfg;
  cfg.adversary = AdversaryKind::kFuzz;
  cfg.corrupt_count = 1;
  cfg.faults = FaultPlan::parse("dup=0.3,reorder=0.4,crash=3@9");
  cfg.seed = 11;
  const auto a = run_tree_aa_net(tree, inputs, 2, cfg);
  const auto b = run_tree_aa_net(tree, inputs, 2, cfg);
  EXPECT_TRUE(a.ok());
  const auto json = a.report.to_json();
  EXPECT_EQ(json, b.report.to_json());
  EXPECT_NE(json.find("\"schema\":\"treeaa.net_report/1\""), std::string::npos);
  EXPECT_NE(json.find("\"fault_plan\""), std::string::npos);
}

TEST(Deploy, CrosscheckThreadsNeverChangeReport) {
  // Running the reference engine on 8 lanes must not perturb anything:
  // same sim outputs, same verdict, byte-identical report. (COW detachment
  // under corrupting links is covered at the engine level by
  // sim_threads_test; frame corruption here behaves as loss and would blow
  // the protocol's fault budget.)
  const auto tree = make_spider(4, 3);
  const auto inputs = spread_inputs(tree, 7);
  DeployConfig cfg;
  cfg.adversary = AdversaryKind::kFuzz;
  cfg.corrupt_count = 1;
  cfg.faults = FaultPlan::parse("dup=0.2,reorder=0.5");
  cfg.seed = 3;
  const auto serial = run_tree_aa_net(tree, inputs, 2, cfg);
  cfg.threads = 8;
  const auto parallel = run_tree_aa_net(tree, inputs, 2, cfg);
  EXPECT_TRUE(serial.sim_match);
  EXPECT_TRUE(parallel.sim_match);
  EXPECT_EQ(parallel.sim_outputs, serial.sim_outputs);
  EXPECT_EQ(parallel.report.to_json(), serial.report.to_json());
}

TEST(Deploy, ValidatesConfiguration) {
  const auto tree = make_path(12);
  const auto inputs = spread_inputs(tree, 4);
  DeployConfig cfg;
  cfg.corrupt_count = 2;  // exceeds t = 1
  cfg.adversary = AdversaryKind::kSilent;
  EXPECT_THROW((void)run_tree_aa_net(tree, inputs, 1, cfg),
               std::invalid_argument);

  DeployConfig bad_crash;
  bad_crash.faults = FaultPlan::parse("crash=9@1");  // party out of range
  EXPECT_THROW((void)run_tree_aa_net(tree, inputs, 1, bad_crash),
               std::invalid_argument);

  EXPECT_THROW((void)run_tree_aa_net(tree, inputs, 2, DeployConfig{}),
               std::invalid_argument);  // n <= 3t
}

}  // namespace
}  // namespace treeaa::net
