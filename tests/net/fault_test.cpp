// Fault-plan parsing and the deterministic per-link decision streams.
#include "net/fault.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace treeaa::net {
namespace {

std::vector<perf::Payload> payloads(std::size_t count, std::size_t size = 4) {
  std::vector<perf::Payload> out;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(Bytes(size, static_cast<std::uint8_t>(i)));
  }
  return out;
}

TEST(FaultPlan, ParsesEveryKey) {
  const auto plan = FaultPlan::parse(
      "drop=0.1,delay=0.2,dup=0.3,corrupt=0.4,reorder=0.5,delay-rounds=3,"
      "crash=2@5,crash=0@1");
  EXPECT_DOUBLE_EQ(plan.drop, 0.1);
  EXPECT_DOUBLE_EQ(plan.delay, 0.2);
  EXPECT_DOUBLE_EQ(plan.duplicate, 0.3);
  EXPECT_DOUBLE_EQ(plan.corrupt, 0.4);
  EXPECT_DOUBLE_EQ(plan.reorder, 0.5);
  EXPECT_EQ(plan.delay_rounds_max, 3u);
  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_EQ(plan.crash_round(2), std::optional<Round>(5));
  EXPECT_EQ(plan.crash_round(0), std::optional<Round>(1));
  EXPECT_EQ(plan.crash_round(1), std::nullopt);
  EXPECT_TRUE(plan.any());
}

TEST(FaultPlan, EmptySpecIsNoFaults) {
  const auto plan = FaultPlan::parse("");
  EXPECT_FALSE(plan.any());
  EXPECT_EQ(plan.describe(), "none");
}

TEST(FaultPlan, DescribeRoundTrips) {
  // delay-rounds only appears in the canonical form when delay is active.
  const auto plan = FaultPlan::parse(
      "drop=0.25,dup=0.5,delay=0.1,delay-rounds=4,crash=1@7");
  const auto reparsed = FaultPlan::parse(plan.describe());
  EXPECT_DOUBLE_EQ(reparsed.drop, plan.drop);
  EXPECT_DOUBLE_EQ(reparsed.duplicate, plan.duplicate);
  EXPECT_EQ(reparsed.delay_rounds_max, plan.delay_rounds_max);
  EXPECT_EQ(reparsed.crash_round(1), std::optional<Round>(7));
  EXPECT_EQ(reparsed.describe(), plan.describe());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("bogus=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drop"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drop=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drop=-0.1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drop=abc"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash=2"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash=x@1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("delay-rounds=0"), std::invalid_argument);
}

TEST(LinkFaults, LinkSeedIsDirectionSensitive) {
  EXPECT_EQ(LinkFaults::link_seed(7, 1, 2), LinkFaults::link_seed(7, 1, 2));
  EXPECT_NE(LinkFaults::link_seed(7, 1, 2), LinkFaults::link_seed(7, 2, 1));
  EXPECT_NE(LinkFaults::link_seed(7, 1, 2), LinkFaults::link_seed(8, 1, 2));
}

TEST(LinkFaults, CleanPlanPassesEverythingThrough) {
  const FaultPlan plan;  // LinkFaults holds the plan by reference
  LinkFaults link(plan, 0, 1, 42);
  const auto out = link.transmit(1, payloads(3));
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out[i].send_round, 1u);
    EXPECT_EQ(out[i].payload.bytes(), Bytes(4, static_cast<std::uint8_t>(i)));
  }
  EXPECT_EQ(link.stats().dropped, 0u);
  EXPECT_EQ(link.stats().payload_copies, 0u);
}

TEST(LinkFaults, SameSeedSameDecisions) {
  const auto plan = FaultPlan::parse(
      "drop=0.3,delay=0.2,dup=0.2,corrupt=0.2,reorder=0.5");
  LinkFaults a(plan, 0, 1, 99);
  LinkFaults b(plan, 0, 1, 99);
  for (Round r = 1; r <= 20; ++r) {
    const auto out_a = a.transmit(r, payloads(5, 16));
    const auto out_b = b.transmit(r, payloads(5, 16));
    ASSERT_EQ(out_a.size(), out_b.size());
    for (std::size_t i = 0; i < out_a.size(); ++i) {
      EXPECT_EQ(out_a[i].payload.bytes(), out_b[i].payload.bytes());
      EXPECT_EQ(out_a[i].send_round, out_b[i].send_round);
    }
  }
  EXPECT_EQ(a.stats().dropped, b.stats().dropped);
  EXPECT_EQ(a.stats().corrupted, b.stats().corrupted);
}

TEST(LinkFaults, DropAlwaysDropsEverything) {
  const auto plan = FaultPlan::parse("drop=1");
  LinkFaults link(plan, 0, 1, 7);
  const auto out = link.transmit(1, payloads(10));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(link.stats().dropped, 10u);
}

TEST(LinkFaults, DelayDefersWithinBound) {
  const auto plan = FaultPlan::parse("delay=1,delay-rounds=3");
  LinkFaults link(plan, 0, 1, 7);
  const auto out = link.transmit(5, payloads(10));
  ASSERT_EQ(out.size(), 10u);
  for (const auto& f : out) {
    EXPECT_GT(f.send_round, 5u);
    EXPECT_LE(f.send_round, 8u);
  }
  EXPECT_EQ(link.stats().delayed, 10u);
}

TEST(LinkFaults, DuplicateEmitsTwoCopies) {
  const auto plan = FaultPlan::parse("dup=1");
  LinkFaults link(plan, 0, 1, 7);
  const auto out = link.transmit(1, payloads(4));
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(link.stats().duplicated, 4u);
}

TEST(LinkFaults, CorruptFlipsBitsButKeepsSize) {
  const auto plan = FaultPlan::parse("corrupt=1");
  LinkFaults link(plan, 0, 1, 7);
  const Bytes original(8, 0x55);
  std::vector<perf::Payload> in;
  in.push_back(original);  // sole handle: use_count 1
  const auto out = link.transmit(1, std::move(in));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload.size(), original.size());
  EXPECT_NE(out[0].payload.bytes(), original);
  EXPECT_EQ(link.stats().corrupted, 1u);
  // The sole handle was corrupted in place — no detach, no byte copy.
  EXPECT_EQ(link.stats().payload_copies, 0u);
}

TEST(LinkFaults, CorruptDetachesSharedPayloadAndCountsTheCopy) {
  const auto plan = FaultPlan::parse("corrupt=1");
  LinkFaults link(plan, 0, 1, 7);
  perf::Payload broadcast{Bytes(8, 0x55)};
  std::vector<perf::Payload> in;
  in.push_back(broadcast);  // refcount 2, as when broadcasting
  const auto out = link.transmit(1, std::move(in));
  ASSERT_EQ(out.size(), 1u);
  // The bit flips landed on a private copy; the shared original is intact,
  // and the copy-on-write detach is the one counted payload copy.
  EXPECT_NE(out[0].payload.bytes(), broadcast.bytes());
  EXPECT_EQ(broadcast.bytes(), Bytes(8, 0x55));
  EXPECT_EQ(link.stats().payload_copies, 1u);
}

TEST(LinkFaults, DuplicateSharesBytesBetweenCopies) {
  const auto plan = FaultPlan::parse("dup=1");
  LinkFaults link(plan, 0, 1, 7);
  const auto out = link.transmit(1, payloads(1));
  ASSERT_EQ(out.size(), 2u);
  // Duplication is a refcount bump, never a byte copy.
  EXPECT_EQ(out[0].payload.data(), out[1].payload.data());
  EXPECT_EQ(link.stats().payload_copies, 0u);
}

TEST(LinkFaults, CrashSuppressesFromItsRoundOn) {
  const auto plan = FaultPlan::parse("crash=0@3");
  LinkFaults link(plan, 0, 1, 7);
  EXPECT_EQ(link.transmit(1, payloads(2)).size(), 2u);
  EXPECT_EQ(link.transmit(2, payloads(2)).size(), 2u);
  EXPECT_TRUE(link.transmit(3, payloads(2)).empty());
  EXPECT_TRUE(link.transmit(4, payloads(2)).empty());
  EXPECT_EQ(link.stats().suppressed, 4u);
}

TEST(LinkFaults, CrashSuppressionDrawsNoRandomness) {
  // A crashed round must not advance the Rng stream: the sim reference
  // world and the socket world agree on every post-crash decision only if
  // suppression is draw-free. Compare a crash-at-1 stream against a fresh
  // stream fed the same post-crash rounds.
  const auto lossy = FaultPlan::parse("drop=0.5,dup=0.5,corrupt=0.5");
  auto crashing = FaultPlan::parse("drop=0.5,dup=0.5,corrupt=0.5,crash=0@1");
  LinkFaults with_crash(crashing, 0, 1, 13);
  EXPECT_TRUE(with_crash.transmit(1, payloads(6)).empty());
  EXPECT_EQ(with_crash.stats().suppressed, 6u);

  // Un-crash the plan in place (LinkFaults holds it by reference): the
  // stream must now behave as if nothing had ever been drawn.
  crashing.crashes.clear();
  LinkFaults fresh(lossy, 0, 1, 13);
  const auto out_a = with_crash.transmit(7, payloads(6, 12));
  const auto out_b = fresh.transmit(7, payloads(6, 12));
  ASSERT_EQ(out_a.size(), out_b.size());
  for (std::size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_EQ(out_a[i].payload.bytes(), out_b[i].payload.bytes());
    EXPECT_EQ(out_a[i].send_round, out_b[i].send_round);
  }
}

TEST(FaultLinkLayer, MirrorsLinkFaultDecisions) {
  // The engine-side adapter must reproduce LinkFaults::transmit per link:
  // same drops, same corruptions; delayed frames are dropped outright.
  const auto plan = FaultPlan::parse("drop=0.4,corrupt=0.3,delay=0.2");
  const std::uint64_t seed = 21;
  const std::size_t n = 3;

  FaultLinkLayer layer(plan, n, seed);
  const auto payload_for = [](PartyId from, PartyId to) {
    return Bytes{static_cast<std::uint8_t>(from),
                 static_cast<std::uint8_t>(to), 7, 7};
  };
  std::vector<sim::Envelope> queued;
  for (PartyId from = 0; from < n; ++from) {
    for (PartyId to = 0; to < n; ++to) {
      queued.push_back(sim::Envelope{from, to, 1, payload_for(from, to)});
    }
  }
  const auto delivered = layer.deliver(1, queued);

  for (PartyId from = 0; from < n; ++from) {
    for (PartyId to = 0; to < n; ++to) {
      const Bytes sent = payload_for(from, to);
      std::vector<Bytes> got;
      for (const auto& e : delivered) {
        if (e.from == from && e.to == to) got.push_back(e.payload.bytes());
      }
      if (from == to) {
        // Self-link is reliable memory in both worlds.
        ASSERT_EQ(got.size(), 1u);
        EXPECT_EQ(got[0], sent);
        continue;
      }
      LinkFaults reference(plan, from, to, seed);
      const auto expect = reference.transmit(1, {sent});
      std::vector<Bytes> surviving;
      for (const auto& f : expect) {
        if (f.send_round == 1) surviving.push_back(f.payload.bytes());
      }
      EXPECT_EQ(got, surviving) << "link " << from << "->" << to;
    }
  }
}

}  // namespace
}  // namespace treeaa::net
