// Configuration rollout over a version tree — a discrete-input-space
// scenario in the spirit of the blockchain-oracle motivation ([5]) from the
// paper's introduction.
//
// A fleet of replicas runs configurations that form a *version tree*: each
// config was forked from its parent (hotfixes, experiments, regional
// variants). The operators want the fleet to converge onto (nearly) one
// version without a coordinator, and the convergence target must be a
// version on the upgrade path between versions honest replicas actually
// run — exactly tree-AA Validity. Two adjacent versions (a config and its
// direct fork) are mutually compatible, so 1-Agreement suffices.
//
// Some replicas are compromised and try to drag the fleet toward an
// abandoned experimental branch by voting for it; Validity makes that
// impossible.
//
//   $ ./version_rollout
#include <iostream>

#include "core/api.h"
#include "harness/runner.h"
#include "sim/strategies.h"
#include "trees/labeled_tree.h"

int main() {
  using namespace treeaa;

  // The version tree. Labels sort by release name; "r1.0" is the root.
  const auto versions = LabeledTree::from_edges({
      {"r1.0", "r1.1"},
      {"r1.1", "r1.2"},
      {"r1.2", "r2.0"},
      {"r2.0", "r2.1"},
      {"r2.1", "r2.2"},
      {"r1.2", "x-exp1"},     // abandoned experimental branch
      {"x-exp1", "x-exp2"},
      {"r2.0", "hotfix-a"},   // emergency fork off r2.0
      {"r2.1", "hotfix-b"},
  });

  // 10 replicas; the honest ones run versions on the r2.x line.
  const std::vector<std::string> running{
      "r2.0", "r2.1", "r2.2", "hotfix-b", "r2.1", "r2.0", "r2.2",
      // Compromised replicas claim the abandoned branch:
      "x-exp2", "x-exp2", "x-exp1"};
  std::vector<VertexId> inputs;
  for (const auto& label : running) inputs.push_back(*versions.find(label));

  const std::size_t t = 3;
  // The compromised replicas run the protocol *honestly* with their hostile
  // inputs — the attack is the input itself (a puppet adversary would be
  // equivalent; here we let them participate so their votes count).
  const auto result = core::run_tree_aa(versions, inputs, t);

  std::cout << "fleet converged in " << result.rounds << " rounds:\n";
  for (PartyId p = 0; p < inputs.size(); ++p) {
    std::cout << "  replica " << p << ": " << running[p] << " -> "
              << versions.label(*result.outputs[p]) << "\n";
  }

  // With ALL parties honest, outputs lie in the hull of all inputs. The
  // interesting check: rerun with the experimenters actually corrupted
  // (silent), and observe that the abandoned branch cannot be the outcome.
  auto adversary =
      std::make_unique<sim::SilentAdversary>(std::vector<PartyId>{7, 8, 9});
  const auto guarded =
      core::run_tree_aa(versions, inputs, t, {}, std::move(adversary));
  std::vector<VertexId> honest_inputs(inputs.begin(), inputs.begin() + 7);
  const auto check = core::check_agreement(versions, honest_inputs,
                                           guarded.honest_outputs());
  std::cout << "with replicas 7-9 Byzantine, the fleet lands on:";
  for (const VertexId v : guarded.honest_outputs()) {
    std::cout << " " << versions.label(v);
  }
  std::cout << "\n(all on the r2.x line: " << (check.valid ? "yes" : "NO")
            << ", pairwise compatible: "
            << (check.one_agreement ? "yes" : "NO") << ")\n";
  return check.ok() ? 0 : 1;
}
