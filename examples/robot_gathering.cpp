// Robot gathering on a corridor map — the robot-gathering motivation from
// the paper's introduction ([34] and the Edge-Gathering work of [2]).
//
// A fleet of warehouse robots is spread over a corridor system whose map is
// a tree (junctions and corridor cells are vertices). The robots must pick
// a meeting cell: after agreement every robot drives to its output vertex,
// and 1-Agreement guarantees all honest robots end up on the same cell or
// two adjacent cells — close enough to dock. Validity keeps the meeting
// point inside the area spanned by the honest robots (no detour through
// unexplored corridors), even though some robots are hijacked and lie
// arbitrarily.
//
// The hijacked robots here mount the strongest attack in this repository:
// the budget-split equivocation strategy against the underlying RealAA.
//
//   $ ./robot_gathering [seed]
#include <cstdlib>
#include <iostream>

#include "core/api.h"
#include "core/paths_finder.h"
#include "harness/runner.h"
#include "realaa/adversaries.h"
#include "trees/generators.h"

int main(int argc, char** argv) {
  using namespace treeaa;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7u;
  Rng rng(seed);

  // The warehouse: a caterpillar — a main corridor with storage bays.
  const auto map = make_caterpillar(/*spine=*/24, /*legs=*/3);
  std::cout << "warehouse map: " << map.n() << " cells, longest corridor "
            << map.diameter() << "\n";

  const std::size_t n = 13;  // robots
  const std::size_t t = 4;   // up to 4 may be hijacked
  const auto positions = harness::random_vertex_inputs(map, n, rng);

  // Hijacked robots run the split-equivocation attack on phase 1.
  realaa::SplitAdversary::Options attack;
  attack.config = core::paths_finder_config(map, n, t, {});
  attack.corrupt = {9, 10, 11, 12};
  auto adversary = std::make_unique<realaa::SplitAdversary>(attack);

  const auto result =
      core::run_tree_aa(map, positions, t, {}, std::move(adversary));

  std::cout << "agreed after " << result.rounds << " rounds ("
            << result.traffic.honest_messages() << " honest messages)\n";
  std::vector<VertexId> honest_positions;
  for (PartyId r = 0; r < n; ++r) {
    std::cout << "  robot " << r << " at " << map.label(positions[r]);
    if (result.outputs[r].has_value()) {
      std::cout << " -> meets at " << map.label(*result.outputs[r]) << "\n";
      honest_positions.push_back(positions[r]);
    } else {
      std::cout << " (hijacked)\n";
    }
  }

  const auto check = core::check_agreement(map, honest_positions,
                                           result.honest_outputs());
  std::cout << "meeting cells within distance "
            << check.max_pairwise_distance << "; inside the fleet's span: "
            << (check.valid ? "yes" : "NO") << "\n";
  return check.ok() ? 0 : 1;
}
