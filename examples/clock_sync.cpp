// Clock synchronization with the RealAA engine — the classic real-valued
// application cited in the paper's introduction ([28]).
//
// Every node holds a local clock offset estimate (milliseconds). Running
// RealAA(eps) directly gives all honest nodes offsets within eps of each
// other, inside the range of honest estimates, tolerating t < n/3 nodes
// that report arbitrary garbage. The example shows the round-optimal engine
// standalone — the same component TreeAA uses as its building block — and
// contrasts its round count against the classic DLPSW iteration.
//
//   $ ./clock_sync
#include <iostream>

#include "baselines/iterated_real_aa.h"
#include "common/table.h"
#include "harness/runner.h"
#include "realaa/adversaries.h"

int main() {
  using namespace treeaa;

  const std::size_t n = 10, t = 3;
  const double spread_ms = 2000.0;  // clocks drifted up to 2 seconds apart
  const double eps_ms = 0.5;        // target closeness: half a millisecond

  Rng rng(99);
  const auto offsets = harness::random_real_inputs(n, -spread_ms / 2,
                                                   spread_ms / 2, rng);

  realaa::Config cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.eps = eps_ms;
  cfg.known_range = spread_ms;

  // The faulty nodes mount the optimal budget-split equivocation attack.
  realaa::SplitAdversary::Options attack;
  attack.config = cfg;
  attack.corrupt = {7, 8, 9};
  const auto run = harness::run_real_aa(
      cfg, offsets, std::make_unique<realaa::SplitAdversary>(attack));

  std::cout << "synchronized in " << run.rounds << " rounds (vs "
            << baselines::IteratedRealConfig{n, t, eps_ms, spread_ms}.rounds()
            << " for the classic halving iteration)\n";
  Table table({"node", "offset in (ms)", "offset out (ms)"});
  for (PartyId p = 0; p < n; ++p) {
    table.row({std::to_string(p), fmt_double(offsets[p], 6),
               run.outputs[p].has_value() ? fmt_double(*run.outputs[p], 6)
                                          : "(faulty)"});
  }
  std::cout << table.render();
  std::cout << "honest spread after agreement: "
            << fmt_double(run.output_range(), 4) << " ms (target "
            << eps_ms << ")\n";
  return run.output_range() <= eps_ms ? 0 : 1;
}
