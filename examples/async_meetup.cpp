// Asynchronous meetup — the same gathering problem as robot_gathering, but
// on a network with NO timing guarantees: messages arrive whenever an
// adversarial scheduler feels like it (here: LIFO, the nastiest built-in
// order), and still every honest participant ends within one vertex of the
// others. This is the Nowak–Rybicki baseline in its native model — the
// protocol the paper's synchronous TreeAA improves upon when rounds *are*
// available.
//
//   $ ./async_meetup [seed]
#include <cstdlib>
#include <iostream>

#include "core/api.h"
#include "harness/runner.h"
#include "trees/generators.h"

int main(int argc, char** argv) {
  using namespace treeaa;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11u;
  Rng rng(seed);

  // A city transit map shaped like a spider: lines radiating from a hub.
  const auto map = make_spider(/*legs=*/5, /*leg_len=*/8);
  const std::size_t n = 10, t = 3;
  const auto positions = harness::random_vertex_inputs(map, n, rng);
  const std::vector<PartyId> offline{7, 8, 9};  // silent Byzantine

  const auto run = harness::run_async_tree_aa(
      map, n, t, positions, {offline, async::SchedulerKind::kLifo, seed});

  std::cout << "meetup settled after " << run.deliveries
            << " message deliveries (" << run.messages
            << " messages; no clocks involved)\n";
  std::vector<VertexId> honest_positions;
  for (PartyId p = 0; p < n; ++p) {
    std::cout << "  participant " << p << " at " << map.label(positions[p]);
    if (run.outputs[p].has_value()) {
      std::cout << " -> " << map.label(*run.outputs[p]) << "\n";
      honest_positions.push_back(positions[p]);
    } else {
      std::cout << " (offline)\n";
    }
  }
  const auto check = core::check_agreement(map, honest_positions,
                                           run.honest_outputs());
  std::cout << "pairwise distance <= 1: "
            << (check.one_agreement ? "yes" : "NO")
            << "; inside the group's span: " << (check.valid ? "yes" : "NO")
            << "\n";
  return check.ok() ? 0 : 1;
}
