// Altitude-band deconfliction on a corridor — the aviation-control
// motivation from the paper's introduction ([30, 35]) and a showcase for
// the §4 warm-up protocol (AA when the input space is a labeled *path*).
//
// Aircraft approaching a shared corridor must settle on a common altitude
// band. Bands form a path (FL100, FL110, ..., FL400); adjacent bands have
// enough separation margin to coexist, so 1-Agreement is operationally
// safe, and Validity guarantees the chosen band lies between bands that
// honest aircraft actually proposed (no climb above everyone's ceiling).
// Faulty transponders may report arbitrary bands — or garbage bytes.
//
//   $ ./altitude_bands
#include <iostream>

#include "core/api.h"
#include "harness/runner.h"
#include "sim/strategies.h"
#include "trees/generators.h"

int main() {
  using namespace treeaa;

  // Flight levels FL100..FL400 in steps of 10: a path of 31 bands. The
  // generator's zero-padded labels keep lexicographic = numeric order.
  std::vector<std::pair<std::string, std::string>> edges;
  auto band = [](int fl) { return "FL" + std::to_string(fl); };
  for (int fl = 100; fl < 400; fl += 10) {
    edges.emplace_back(band(fl), band(fl + 10));
  }
  const auto corridor = LabeledTree::from_edges(edges);

  const std::size_t n = 7, t = 2;
  const std::vector<std::string> proposals{"FL240", "FL310", "FL270",
                                           "FL350", "FL220", "FL400",
                                           "FL100"};
  std::vector<VertexId> inputs;
  for (const auto& p : proposals) inputs.push_back(*corridor.find(p));

  // Two faulty transponders spray garbage.
  auto adversary = std::make_unique<sim::FuzzAdversary>(
      std::vector<PartyId>{5, 6}, /*seed=*/1, /*messages_per_round=*/20);

  const auto run = harness::run_path_aa(corridor, n, t, inputs,
                                        std::move(adversary));

  std::cout << "deconflicted in " << run.rounds << " rounds:\n";
  std::vector<VertexId> honest_inputs;
  for (PartyId p = 0; p < n; ++p) {
    std::cout << "  aircraft " << p << ": proposed " << proposals[p];
    if (run.outputs[p].has_value()) {
      std::cout << " -> assigned " << corridor.label(*run.outputs[p])
                << "\n";
      honest_inputs.push_back(inputs[p]);
    } else {
      std::cout << " (faulty transponder)\n";
    }
  }
  const auto check = core::check_agreement(corridor, honest_inputs,
                                           run.honest_outputs());
  std::cout << "bands within one level of each other: "
            << (check.one_agreement ? "yes" : "NO")
            << "; inside proposed envelope: " << (check.valid ? "yes" : "NO")
            << "\n";
  return check.ok() ? 0 : 1;
}
