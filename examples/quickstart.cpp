// Quickstart: run TreeAA end to end in ~30 lines.
//
// Seven parties hold vertices of a small labeled tree; two of them are
// Byzantine (here: silently crashed). TreeAA gives every honest party a
// vertex such that all honest outputs are within distance 1 of each other
// and inside the convex hull of the honest inputs — in
// O(log|V| / log log|V|) synchronous rounds.
//
//   $ ./quickstart
#include <iostream>

#include "core/api.h"
#include "sim/strategies.h"
#include "trees/labeled_tree.h"

int main() {
  using namespace treeaa;

  // The public input space: a labeled tree known to every party.
  const auto tree = LabeledTree::from_edges({{"hub", "lab"},
                                             {"hub", "office"},
                                             {"hub", "store"},
                                             {"office", "desk1"},
                                             {"office", "desk2"},
                                             {"store", "cellar"}});

  // Each party's input vertex (parties 5 and 6 will be corrupted).
  const std::vector<VertexId> inputs{
      *tree.find("desk1"), *tree.find("desk2"), *tree.find("lab"),
      *tree.find("cellar"), *tree.find("hub"),  *tree.find("desk1"),
      *tree.find("store")};

  const std::size_t t = 2;  // tolerated corruptions; needs n > 3t
  auto adversary =
      std::make_unique<sim::SilentAdversary>(std::vector<PartyId>{5, 6});

  const auto result = core::run_tree_aa(tree, inputs, t, {},
                                        std::move(adversary));

  std::cout << "TreeAA finished in " << result.rounds << " rounds\n";
  for (PartyId p = 0; p < inputs.size(); ++p) {
    std::cout << "  party " << p << ": input " << tree.label(inputs[p]);
    if (result.outputs[p].has_value()) {
      std::cout << " -> output " << tree.label(*result.outputs[p]) << "\n";
    } else {
      std::cout << " (Byzantine, no output)\n";
    }
  }

  // Verify the AA guarantees (Definition 2 of the paper).
  std::vector<VertexId> honest_inputs;
  for (PartyId p = 0; p < inputs.size(); ++p) {
    if (result.outputs[p].has_value()) honest_inputs.push_back(inputs[p]);
  }
  const auto check =
      core::check_agreement(tree, honest_inputs, result.honest_outputs());
  std::cout << "validity: " << (check.valid ? "ok" : "VIOLATED")
            << ", 1-agreement: " << (check.one_agreement ? "ok" : "VIOLATED")
            << " (max pairwise distance " << check.max_pairwise_distance
            << ")\n";
  return check.ok() ? 0 : 1;
}
