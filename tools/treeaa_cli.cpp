// treeaa_cli — command-line front end for the library.
//
//   treeaa_cli gen <family> <n> [seed]         generate a tree (text format)
//   treeaa_cli info <file|->                   tree statistics
//   treeaa_cli dot <file|-> [label...]         Graphviz export (highlights)
//   treeaa_cli bounds <D> <n> <t>              round bounds for a diameter
//   treeaa_cli run <file|-> --t <t> --inputs <l1,l2,...>
//              [--adversary none|silent|fuzz|split]
//              [--adversary-spec <file|->] [--engine bdh|classic]
//              [--seed <s>] [--threads <k>] [--quiet]
//              [--metrics <file|->] [--report json]
//              [--trace <file|->] [--trace-format text|jsonl]
//              [--spans <file|->] [--timings]
//
// `--adversary-spec` takes a `treeaa.adversary_spec/1` JSON file (docs/
// API.md) and runs exactly that point in adversary space — no RNG draw, so
// a hunt corpus entry replays byte-for-byte. The shared flags after
// --engine are parsed by tools/common_flags.h, the one parser every tool
// in this directory folds into its argument loop.
//   treeaa_cli gen-graph <family> <n> [seed]   generate a block graph
//   treeaa_cli info-graph <file|->             block decomposition stats
//   treeaa_cli dot-graph <file|->              Graphviz export (blocks)
//   treeaa_cli run-block <file|-> ...          BlockAA run (same flags as
//                                              `run`; see usage)
//
// `-` reads the tree from stdin, so commands compose:
//   treeaa_cli gen spider 40 | treeaa_cli run - --t 2 --inputs v00,v11,...
//   treeaa_cli gen-graph cactus 30 |
//       treeaa_cli run-block - --t 1 --inputs v000,v007,v013,v021
//
// Observability (docs/OBSERVABILITY.md): --metrics writes the machine-
// readable run report ("treeaa.run_report/1") to a file (falling back to
// the TREEAA_METRICS environment variable when the flag is absent — the
// same contract as the bench binaries), --report json
// replaces the human summary with the same JSON on stdout, --trace records
// the engine transcript (text or JSONL, "treeaa.trace/1"), --spans records
// the causal timeline as Chrome trace-event JSON (open in Perfetto).
// Reports are byte-reproducible across identical runs unless --timings adds
// the wall-clock section; span files carry wall-clock timestamps and are
// never reproducible, but attaching them changes no other output byte.
// --quiet only suppresses the human table; it never affects
// --metrics/--trace/--spans. When JSON or a trace targets stdout
// (--metrics -, --trace -, --spans -, --report json) the human table and
// summary are suppressed entirely so stdout stays machine-parseable.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bounds/fekete.h"
#include "common/table.h"
#include "common_flags.h"
#include "core/api.h"
#include "harness/adversary_spec.h"
#include "graphs/block_aa.h"
#include "graphs/block_index.h"
#include "graphs/check.h"
#include "graphs/generators.h"
#include "graphs/serialization.h"
#include "harness/runner.h"
#include "obs/probe.h"
#include "obs/report.h"
#include "obs/sink.h"
#include "obs/span.h"
#include "realaa/rounds.h"
#include "sim/strategies.h"
#include "sim/trace.h"
#include "trees/generators.h"
#include "trees/metrics.h"
#include "trees/serialization.h"

namespace {

using namespace treeaa;

// The shared obs/run flag vocabularies (tools/common_flags.h): the full set
// for the synchronous run commands, the report-only subset for run-async.
const tools::CommonFlagSet kRunFlags = {.seed = true,
                                        .threads = true,
                                        .metrics = true,
                                        .report_mode = true,
                                        .trace = true,
                                        .spans = true,
                                        .timings = true,
                                        .quiet = true};
const tools::CommonFlagSet kRunAsyncFlags = {.seed = true,
                                             .metrics = true,
                                             .report_mode = true,
                                             .timings = true,
                                             .quiet = true};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  treeaa_cli gen <path|star|binary|caterpillar|spider|random> <n> "
      "[seed]\n"
      "  treeaa_cli info <file|->\n"
      "  treeaa_cli dot <file|-> [label...]\n"
      "  treeaa_cli bounds <D> <n> <t>\n"
      "  treeaa_cli run <file|-> --t <t> --inputs <l1,l2,...>\n"
      "             [--adversary none|silent|fuzz|split] "
      "[--adversary-spec <file|->] [--engine bdh|classic]\n"
      "             " << tools::common_flags_usage(kRunFlags) << "\n"
      "  treeaa_cli run-async <file|-> --t <t> --inputs <l1,l2,...>\n"
      "             [--scheduler fifo|lifo|random] [--silent <k>]\n"
      "             " << tools::common_flags_usage(kRunAsyncFlags) << "\n"
      "  treeaa_cli gen-graph <tree|clique_chain|block_random|cactus> <n> "
      "[seed]\n"
      "  treeaa_cli info-graph <file|->\n"
      "  treeaa_cli dot-graph <file|->\n"
      "  treeaa_cli run-block <file|-> --t <t> --inputs <l1,l2,...>\n"
      "             [--adversary none|silent|fuzz|split] "
      "[--adversary-spec <file|->] [--engine bdh|classic]\n"
      "             " << tools::common_flags_usage(kRunFlags) << "\n";
  std::exit(2);
}

std::string read_all(const std::string& path) {
  if (path == "-") {
    std::ostringstream os;
    os << std::cin.rdbuf();
    return os.str();
  }
  std::ifstream in(path);
  if (!in) usage("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_output(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::cout << content;
    return;
  }
  std::ofstream out(path);
  if (!out) usage("cannot write '" + path + "'");
  out << content;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(s);
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int cmd_gen(const std::vector<std::string>& args) {
  if (args.size() < 2 || args.size() > 3) usage("gen needs <family> <n>");
  const std::size_t n = std::stoul(args[1]);
  const std::uint64_t seed = args.size() == 3 ? std::stoull(args[2]) : 1;
  Rng rng(seed);
  for (const TreeFamily f : all_tree_families()) {
    if (args[0] == tree_family_name(f)) {
      std::cout << tree_to_text(make_family_tree(f, n, rng));
      return 0;
    }
  }
  usage("unknown family '" + args[0] + "'");
}

int cmd_info(const std::vector<std::string>& args) {
  if (args.size() != 1) usage("info needs <file|->");
  const auto tree = tree_from_text(read_all(args[0]));
  const auto [a, b] = tree.diameter_endpoints();
  std::cout << "vertices:  " << tree.n() << "\n"
            << "diameter:  " << tree.diameter() << " (" << tree.label(a)
            << " .. " << tree.label(b) << ")\n"
            << "root:      " << tree.label(tree.root())
            << " (lowest label)\n"
            << "euler len: " << 2 * tree.n() - 1 << "\n";
  std::cout << "center:   ";
  for (const VertexId c : tree_center(tree)) {
    std::cout << " " << tree.label(c);
  }
  std::cout << "\ncentroid: ";
  for (const VertexId c : tree_centroid(tree)) {
    std::cout << " " << tree.label(c);
  }
  std::cout << "\n";
  Table rounds({"n", "t", "TreeAA rounds", "lower bound"});
  for (std::size_t n : {4u, 7u, 16u, 31u}) {
    const std::size_t t = (n - 1) / 3;
    rounds.row({std::to_string(n), std::to_string(t),
                std::to_string(core::tree_aa_rounds(tree, n, t)),
                std::to_string(bounds::lower_bound_rounds(
                    static_cast<double>(tree.diameter()), n, t))});
  }
  std::cout << rounds.render();
  return 0;
}

int cmd_dot(const std::vector<std::string>& args) {
  if (args.empty()) usage("dot needs <file|->");
  const auto tree = tree_from_text(read_all(args[0]));
  std::vector<VertexId> highlight;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const auto v = tree.find(args[i]);
    if (!v.has_value()) usage("no vertex labeled '" + args[i] + "'");
    highlight.push_back(*v);
  }
  std::cout << tree_to_dot(tree, highlight);
  return 0;
}

int cmd_bounds(const std::vector<std::string>& args) {
  if (args.size() != 3) usage("bounds needs <D> <n> <t>");
  const double d = std::stod(args[0]);
  const std::size_t n = std::stoul(args[1]);
  const std::size_t t = std::stoul(args[2]);
  std::cout << "Fekete/Theorem-2 lower bound: "
            << bounds::lower_bound_rounds(d, n, t) << " rounds\n"
            << "Theorem-2 closed form:        "
            << fmt_double(bounds::theorem2_closed_form(d, n, t)) << "\n"
            << "Theorem-3 RealAA bound:       "
            << realaa::theorem3_round_bound(d, 1.0) << " rounds\n";
  return 0;
}

int cmd_run(const std::vector<std::string>& args) {
  if (args.empty()) usage("run needs <file|->");
  const auto tree = tree_from_text(read_all(args[0]));

  std::size_t t = 0;
  std::vector<std::string> input_labels;
  std::string adversary = "none";
  bool adversary_set = false;
  std::string adversary_spec_path;
  std::string engine = "bdh";
  tools::CommonFlags flags;
  const tools::UsageFn fail = [](const std::string& m) { usage(m); };
  for (std::size_t i = 1; i < args.size(); ++i) {
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) usage("missing value after " + args[i]);
      return args[++i];
    };
    if (args[i] == "--t") {
      t = std::stoul(next());
    } else if (args[i] == "--inputs") {
      input_labels = split_csv(next());
    } else if (args[i] == "--adversary") {
      adversary = next();
      adversary_set = true;
    } else if (args[i] == "--adversary-spec") {
      adversary_spec_path = next();
    } else if (args[i] == "--engine") {
      engine = next();
    } else if (tools::parse_common_flag(args, i, kRunFlags, flags, fail)) {
      // consumed
    } else {
      usage("unknown option '" + args[i] + "'");
    }
  }
  if (input_labels.empty()) usage("--inputs is required");
  flags.metrics_path = obs::resolve_metrics_path(std::move(flags.metrics_path));
  const std::size_t n = input_labels.size();
  // The fault bound via the registry's typed validator; the CLI keeps its
  // historical one-liner for the common case.
  if (const auto issue =
          harness::validate_axes(harness::ProtocolKind::kTreeAA, n, t)) {
    usage(issue->error == harness::SpecError::kFaultBound ? "need n > 3t"
                                                          : issue->detail);
  }

  std::vector<VertexId> inputs;
  for (const auto& label : input_labels) {
    const auto v = tree.find(label);
    if (!v.has_value()) usage("no vertex labeled '" + label + "'");
    inputs.push_back(*v);
  }

  core::TreeAAOptions opts;
  if (engine == "classic") {
    opts.engine = core::RealEngineKind::kClassicHalving;
  } else if (engine != "bdh") {
    usage("unknown engine '" + engine + "'");
  }

  std::unique_ptr<sim::Adversary> adv;
  std::string adversary_label = adversary;
  if (!adversary_spec_path.empty()) {
    // Explicit point in adversary space (docs/API.md): the spec carries the
    // victims and parameters verbatim, so the run is a pure function of the
    // file — no RNG draw. This is how hunt corpus entries replay.
    if (adversary_set) {
      usage("--adversary-spec cannot be combined with --adversary");
    }
    std::string error;
    auto spec = harness::adversary_spec_from_json(
        read_all(adversary_spec_path), &error);
    if (!spec.has_value()) usage("--adversary-spec: " + error);
    if (const auto issue = harness::validate_axes(
            harness::ProtocolKind::kTreeAA, n, t, spec->kind)) {
      usage(issue->detail);
    }
    core::PathsFinderOptions pf;
    pf.engine = opts.engine;
    spec->split_config = core::paths_finder_config(tree, n, t, pf);
    adversary_label = harness::adversary_name(spec->kind);
    adv = harness::make_adversary(*spec);
  } else {
    // Resolve the adversary through the registry. split1 parses but does not
    // apply to TreeAA, so it stays "unknown" here exactly as before.
    const auto adv_kind = harness::adversary_from_name(adversary);
    if (!adv_kind.has_value() ||
        !harness::adversary_applies(harness::ProtocolKind::kTreeAA,
                                    *adv_kind)) {
      usage("unknown adversary '" + adversary + "'");
    }
    Rng rng(flags.seed);
    harness::AdversarySpec spec;
    spec.kind = *adv_kind;
    // Historical draw order: victims come off the seed stream unconditionally
    // (even for --adversary none), and fuzz payloads reuse the CLI seed.
    spec.victims = sim::random_parties(n, t, rng);
    spec.fuzz_seed = flags.seed;
    if (spec.kind == harness::AdversaryKind::kSplit) {
      spec.split_config = core::paths_finder_config(tree, n, t, {});
    }
    adv = harness::make_adversary(spec);
  }

  obs::RunReport report;
  sim::RecordingTracer text_tracer;
  obs::JsonlTracer jsonl_tracer;
  obs::SpanSink span_sink;
  obs::Hooks hooks;
  if (!flags.metrics_path.empty() || flags.report_json) {
    hooks.report = &report;
  }
  if (!flags.trace_path.empty()) {
    hooks.tracer = flags.trace_format == "jsonl"
                       ? static_cast<sim::Tracer*>(&jsonl_tracer)
                       : static_cast<sim::Tracer*>(&text_tracer);
  }
  if (!flags.spans_path.empty()) hooks.spans = &span_sink;
  if (hooks.report != nullptr) {
    report.add_param("adversary", adversary_label);
    report.add_param("seed", flags.seed);
  }

  // --threads only changes wall-clock: outputs, reports and traces are
  // byte-identical to the serial engine for any value.
  const auto result =
      core::run_tree_aa(tree, inputs, t, opts, std::move(adv),
                        hooks.active() ? &hooks : nullptr,
                        sim::EngineOptions{flags.threads});

  std::vector<VertexId> honest_inputs;
  for (PartyId p = 0; p < n; ++p) {
    if (result.outputs[p].has_value()) honest_inputs.push_back(inputs[p]);
  }
  const auto check =
      core::check_agreement(tree, honest_inputs, result.honest_outputs());

  if (hooks.report != nullptr) {
    report.add_outcome("validity", check.valid);
    report.add_outcome("one_agreement", check.one_agreement);
    report.add_outcome("max_pairwise_distance",
                       static_cast<std::uint64_t>(check.max_pairwise_distance));
    const std::string json = report.to_json(flags.timings) + "\n";
    if (!obs::write_sink(flags.metrics_path, json)) return 2;
    if (flags.report_json && flags.metrics_path != "-") std::cout << json;
  }
  if (!flags.trace_path.empty()) {
    write_output(flags.trace_path, flags.trace_format == "jsonl"
                                       ? jsonl_tracer.text()
                                       : text_tracer.text());
  }
  if (!flags.spans_path.empty()) {
    write_output(flags.spans_path, span_sink.to_chrome_json());
  }

  // Keep stdout machine-clean: the human table and summary are skipped
  // whenever JSON or a trace is being streamed to stdout.
  if (!flags.report_json && flags.metrics_path != "-" &&
      flags.trace_path != "-" && flags.spans_path != "-") {
    if (!flags.quiet) {
      Table table({"party", "input", "output"});
      for (PartyId p = 0; p < n; ++p) {
        table.row({std::to_string(p), input_labels[p],
                   result.outputs[p].has_value()
                       ? tree.label(*result.outputs[p])
                       : "(corrupt)"});
      }
      std::cout << table.render();
    }
    std::cout << "rounds: " << result.rounds
              << "  messages: " << result.traffic.total_messages()
              << "  bytes: " << result.traffic.total_bytes()
              << "  adversarial: " << result.traffic.adversary_messages()
              << " msgs / " << result.traffic.adversary_bytes() << " bytes\n"
              << "path split: " << (result.path_split ? "yes" : "no")
              << "  clamps: " << result.clamp_count
              << "  byzantine proven: " << result.max_detected_faulty << "\n"
              << "validity: " << (check.valid ? "ok" : "VIOLATED")
              << "  1-agreement: "
              << (check.one_agreement ? "ok" : "VIOLATED") << "\n";
  }
  return check.ok() ? 0 : 1;
}

int cmd_run_async(const std::vector<std::string>& args) {
  if (args.empty()) usage("run-async needs <file|->");
  const auto tree = tree_from_text(read_all(args[0]));

  std::size_t t = 0;
  std::size_t silent = 0;
  std::vector<std::string> input_labels;
  std::string scheduler = "random";
  tools::CommonFlags flags;
  const tools::UsageFn fail = [](const std::string& m) { usage(m); };
  for (std::size_t i = 1; i < args.size(); ++i) {
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) usage("missing value after " + args[i]);
      return args[++i];
    };
    if (args[i] == "--t") {
      t = std::stoul(next());
    } else if (args[i] == "--inputs") {
      input_labels = split_csv(next());
    } else if (args[i] == "--scheduler") {
      scheduler = next();
    } else if (args[i] == "--silent") {
      silent = std::stoul(next());
    } else if (tools::parse_common_flag(args, i, kRunAsyncFlags, flags,
                                        fail)) {
      // consumed
    } else {
      usage("unknown option '" + args[i] + "'");
    }
  }
  if (input_labels.empty()) usage("--inputs is required");
  flags.metrics_path = obs::resolve_metrics_path(std::move(flags.metrics_path));
  const std::size_t n = input_labels.size();
  if (const auto issue = harness::validate_axes(
          harness::ProtocolKind::kAsyncTreeAA, n, t)) {
    usage(issue->error == harness::SpecError::kFaultBound ? "need n > 3t"
                                                          : issue->detail);
  }
  if (silent > t) usage("--silent must be <= t");

  std::vector<VertexId> inputs;
  for (const auto& label : input_labels) {
    const auto v = tree.find(label);
    if (!v.has_value()) usage("no vertex labeled '" + label + "'");
    inputs.push_back(*v);
  }

  const auto sched = harness::scheduler_from_name(scheduler);
  if (!sched.has_value()) usage("unknown scheduler '" + scheduler + "'");

  Rng rng(flags.seed);
  auto corrupt = sim::random_parties(n, silent, rng);

  obs::RunReport report;
  obs::Hooks hooks;
  if (!flags.metrics_path.empty() || flags.report_json) {
    hooks.report = &report;
  }
  if (hooks.report != nullptr) report.add_param("scheduler", scheduler);

  const auto run = harness::run_async_tree_aa(
      tree, n, t, inputs, {std::move(corrupt), *sched, flags.seed}, nullptr,
      hooks.active() ? &hooks : nullptr);

  std::vector<VertexId> honest_inputs;
  for (PartyId p = 0; p < n; ++p) {
    if (run.outputs[p].has_value()) honest_inputs.push_back(inputs[p]);
  }
  const auto check =
      core::check_agreement(tree, honest_inputs, run.honest_outputs());

  if (hooks.report != nullptr) {
    report.add_outcome("validity", check.valid);
    report.add_outcome("one_agreement", check.one_agreement);
    const std::string json = report.to_json(flags.timings) + "\n";
    if (!obs::write_sink(flags.metrics_path, json)) return 2;
    if (flags.report_json && flags.metrics_path != "-") std::cout << json;
  }

  if (!flags.report_json && flags.metrics_path != "-") {
    if (!flags.quiet) {
      Table table({"party", "input", "output"});
      for (PartyId p = 0; p < n; ++p) {
        table.row({std::to_string(p), input_labels[p],
                   run.outputs[p].has_value() ? tree.label(*run.outputs[p])
                                              : "(corrupt)"});
      }
      std::cout << table.render();
    }
    std::cout << "deliveries: " << run.deliveries
              << "  messages: " << run.messages << "\n"
              << "validity: " << (check.valid ? "ok" : "VIOLATED")
              << "  1-agreement: "
              << (check.one_agreement ? "ok" : "VIOLATED") << "\n";
  }
  return check.ok() ? 0 : 1;
}

int cmd_gen_graph(const std::vector<std::string>& args) {
  if (args.size() < 2 || args.size() > 3) usage("gen-graph needs <family> <n>");
  const std::size_t n = std::stoul(args[1]);
  const std::uint64_t seed = args.size() == 3 ? std::stoull(args[2]) : 1;
  Rng rng(seed);
  for (const graphs::GraphFamily f : graphs::all_graph_families()) {
    if (args[0] == graphs::graph_family_name(f)) {
      std::cout << graphs::graph_to_text(graphs::make_family_graph(f, n, rng));
      return 0;
    }
  }
  usage("unknown graph family '" + args[0] + "'");
}

int cmd_info_graph(const std::vector<std::string>& args) {
  if (args.size() != 1) usage("info-graph needs <file|->");
  const auto g = graphs::graph_from_text(read_all(args[0]));
  const graphs::BlockIndex index(g);
  const auto& d = index.decomposition();
  std::size_t edges = 0, cliques = 0, cycles = 0;
  for (const auto& b : d.blocks()) {
    if (b.shape == graphs::BlockShape::kEdge) ++edges;
    if (b.shape == graphs::BlockShape::kClique) ++cliques;
    if (b.shape == graphs::BlockShape::kCycle) ++cycles;
  }
  const auto [a, b] = index.diameter_endpoints();
  const auto& at = index.agreement_tree();
  std::cout << "vertices:       " << g.n() << "\n"
            << "edges:          " << g.edge_count() << "\n"
            << "diameter:       " << index.diameter() << " (" << g.label(a)
            << " .. " << g.label(b) << ")\n"
            << "blocks:         " << d.blocks().size() << " (" << edges
            << " edge, " << cliques << " clique, " << cycles << " cycle)\n"
            << "cut vertices:   " << d.cut_count() << "\n"
            << "family:         "
            << (g.is_tree()           ? "tree"
                : index.all_cliques() ? "block graph (all cliques)"
                                      : "cactus (has cycle blocks)")
            << "\n"
            << "agreement tree: " << at.n() << " nodes, diameter "
            << at.diameter() << "\n";
  Table rounds({"n", "t", "BlockAA rounds", "lower bound"});
  for (std::size_t pn : {4u, 7u, 16u, 31u}) {
    const std::size_t pt = (pn - 1) / 3;
    rounds.row({std::to_string(pn), std::to_string(pt),
                std::to_string(graphs::block_aa_rounds(index, pn, pt)),
                std::to_string(bounds::lower_bound_rounds(
                    static_cast<double>(index.diameter()), pn, pt))});
  }
  std::cout << rounds.render();
  return 0;
}

int cmd_dot_graph(const std::vector<std::string>& args) {
  if (args.size() != 1) usage("dot-graph needs <file|->");
  const auto g = graphs::graph_from_text(read_all(args[0]));
  const graphs::BlockDecomposition d(g);
  std::cout << graphs::graph_to_dot(g, d);
  return 0;
}

int cmd_run_block(const std::vector<std::string>& args) {
  if (args.empty()) usage("run-block needs <file|->");
  const auto g = graphs::graph_from_text(read_all(args[0]));
  const graphs::BlockIndex index(g);

  std::size_t t = 0;
  std::vector<std::string> input_labels;
  std::string adversary = "none";
  bool adversary_set = false;
  std::string adversary_spec_path;
  std::string engine = "bdh";
  tools::CommonFlags flags;
  const tools::UsageFn fail = [](const std::string& m) { usage(m); };
  for (std::size_t i = 1; i < args.size(); ++i) {
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) usage("missing value after " + args[i]);
      return args[++i];
    };
    if (args[i] == "--t") {
      t = std::stoul(next());
    } else if (args[i] == "--inputs") {
      input_labels = split_csv(next());
    } else if (args[i] == "--adversary") {
      adversary = next();
      adversary_set = true;
    } else if (args[i] == "--adversary-spec") {
      adversary_spec_path = next();
    } else if (args[i] == "--engine") {
      engine = next();
    } else if (tools::parse_common_flag(args, i, kRunFlags, flags, fail)) {
      // consumed
    } else {
      usage("unknown option '" + args[i] + "'");
    }
  }
  if (input_labels.empty()) usage("--inputs is required");
  flags.metrics_path = obs::resolve_metrics_path(std::move(flags.metrics_path));
  const std::size_t n = input_labels.size();
  if (const auto issue =
          harness::validate_axes(harness::ProtocolKind::kBlockAA, n, t)) {
    usage(issue->error == harness::SpecError::kFaultBound ? "need n > 3t"
                                                          : issue->detail);
  }

  std::vector<VertexId> inputs;
  for (const auto& label : input_labels) {
    const auto v = g.find(label);
    if (!v.has_value()) usage("no vertex labeled '" + label + "'");
    inputs.push_back(*v);
  }

  graphs::BlockAAOptions opts;
  if (engine == "classic") {
    opts.engine = core::RealEngineKind::kClassicHalving;
  } else if (engine != "bdh") {
    usage("unknown engine '" + engine + "'");
  }

  std::unique_ptr<sim::Adversary> adv;
  std::string adversary_label = adversary;
  if (!adversary_spec_path.empty()) {
    if (adversary_set) {
      usage("--adversary-spec cannot be combined with --adversary");
    }
    std::string error;
    auto spec = harness::adversary_spec_from_json(
        read_all(adversary_spec_path), &error);
    if (!spec.has_value()) usage("--adversary-spec: " + error);
    if (const auto issue = harness::validate_axes(
            harness::ProtocolKind::kBlockAA, n, t, spec->kind)) {
      usage(issue->detail);
    }
    // The split adversary aims at the agreement tree — the topology the
    // inner TreeAA actually runs on.
    core::PathsFinderOptions pf;
    pf.engine = opts.engine;
    spec->split_config =
        core::paths_finder_config(index.agreement_tree(), n, t, pf);
    adversary_label = harness::adversary_name(spec->kind);
    adv = harness::make_adversary(*spec);
  } else {
    const auto adv_kind = harness::adversary_from_name(adversary);
    if (!adv_kind.has_value() ||
        !harness::adversary_applies(harness::ProtocolKind::kBlockAA,
                                    *adv_kind)) {
      usage("unknown adversary '" + adversary + "'");
    }
    Rng rng(flags.seed);
    harness::AdversarySpec spec;
    spec.kind = *adv_kind;
    // Same historical draw order as `run`: victims come off the seed stream
    // unconditionally, fuzz payloads reuse the CLI seed, and the split
    // adversary aims at the agreement tree.
    spec.victims = sim::random_parties(n, t, rng);
    spec.fuzz_seed = flags.seed;
    if (spec.kind == harness::AdversaryKind::kSplit) {
      spec.split_config =
          core::paths_finder_config(index.agreement_tree(), n, t, {});
    }
    adv = harness::make_adversary(spec);
  }

  obs::RunReport report;
  sim::RecordingTracer text_tracer;
  obs::JsonlTracer jsonl_tracer;
  obs::SpanSink span_sink;
  obs::Hooks hooks;
  if (!flags.metrics_path.empty() || flags.report_json) {
    hooks.report = &report;
  }
  if (!flags.trace_path.empty()) {
    hooks.tracer = flags.trace_format == "jsonl"
                       ? static_cast<sim::Tracer*>(&jsonl_tracer)
                       : static_cast<sim::Tracer*>(&text_tracer);
  }
  if (!flags.spans_path.empty()) hooks.spans = &span_sink;
  if (hooks.report != nullptr) {
    report.add_param("adversary", adversary_label);
    report.add_param("seed", flags.seed);
  }

  const auto result =
      graphs::run_block_aa(index, inputs, t, opts, std::move(adv),
                           hooks.active() ? &hooks : nullptr,
                           sim::EngineOptions{flags.threads});

  std::vector<VertexId> honest_inputs;
  for (PartyId p = 0; p < n; ++p) {
    if (result.outputs[p].has_value()) honest_inputs.push_back(inputs[p]);
  }
  const auto check =
      graphs::check_agreement(index, honest_inputs, result.honest_outputs());

  if (hooks.report != nullptr) {
    report.add_outcome("validity", check.valid);
    report.add_outcome("one_agreement", check.one_agreement);
    report.add_outcome("max_pairwise_distance",
                       static_cast<std::uint64_t>(check.max_pairwise_distance));
    const std::string json = report.to_json(flags.timings) + "\n";
    if (!obs::write_sink(flags.metrics_path, json)) return 2;
    if (flags.report_json && flags.metrics_path != "-") std::cout << json;
  }
  if (!flags.trace_path.empty()) {
    write_output(flags.trace_path, flags.trace_format == "jsonl"
                                       ? jsonl_tracer.text()
                                       : text_tracer.text());
  }
  if (!flags.spans_path.empty()) {
    write_output(flags.spans_path, span_sink.to_chrome_json());
  }

  if (!flags.report_json && flags.metrics_path != "-" &&
      flags.trace_path != "-" && flags.spans_path != "-") {
    if (!flags.quiet) {
      Table table({"party", "input", "output"});
      for (PartyId p = 0; p < n; ++p) {
        table.row({std::to_string(p), input_labels[p],
                   result.outputs[p].has_value() ? g.label(*result.outputs[p])
                                                 : "(corrupt)"});
      }
      std::cout << table.render();
    }
    std::cout << "rounds: " << result.rounds
              << "  messages: " << result.traffic.total_messages()
              << "  bytes: " << result.traffic.total_bytes()
              << "  adversarial: " << result.traffic.adversary_messages()
              << " msgs / " << result.traffic.adversary_bytes() << " bytes\n"
              << "path split: " << (result.path_split ? "yes" : "no")
              << "  clamps: " << result.clamp_count
              << "  byzantine proven: " << result.max_detected_faulty << "\n"
              << "validity: " << (check.valid ? "ok" : "VIOLATED")
              << "  1-agreement: "
              << (check.one_agreement ? "ok" : "VIOLATED") << "\n";
  }
  return check.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) usage();
  const std::string cmd = args[0];
  args.erase(args.begin());
  try {
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "dot") return cmd_dot(args);
    if (cmd == "bounds") return cmd_bounds(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "run-async") return cmd_run_async(args);
    if (cmd == "gen-graph") return cmd_gen_graph(args);
    if (cmd == "info-graph") return cmd_info_graph(args);
    if (cmd == "dot-graph") return cmd_dot_graph(args);
    if (cmd == "run-block") return cmd_run_block(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  usage("unknown command '" + cmd + "'");
}
