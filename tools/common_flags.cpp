#include "common_flags.h"

namespace treeaa::tools {

namespace {

const std::string& next_value(const std::vector<std::string>& args,
                              std::size_t& i, const UsageFn& fail) {
  if (i + 1 >= args.size()) fail("missing value after " + args[i]);
  return args[++i];
}

}  // namespace

bool parse_common_flag(const std::vector<std::string>& args, std::size_t& i,
                       const CommonFlagSet& set, CommonFlags& flags,
                       const UsageFn& fail) {
  const std::string& arg = args[i];
  if (set.seed && arg == "--seed") {
    flags.seed = std::stoull(next_value(args, i, fail));
    flags.seed_set = true;
    return true;
  }
  if (set.threads && arg == "--threads") {
    flags.threads = std::stoul(next_value(args, i, fail));
    return true;
  }
  if (set.metrics && arg == "--metrics") {
    flags.metrics_path = next_value(args, i, fail);
    return true;
  }
  if (set.report_mode && arg == "--report") {
    if (next_value(args, i, fail) != "json") {
      fail("--report only supports 'json'");
    }
    flags.report_json = true;
    return true;
  }
  if (set.report_path && arg == "--report") {
    flags.report_path = next_value(args, i, fail);
    return true;
  }
  if (set.trace && arg == "--trace") {
    flags.trace_path = next_value(args, i, fail);
    return true;
  }
  if (set.trace && arg == "--trace-format") {
    flags.trace_format = next_value(args, i, fail);
    if (flags.trace_format != "text" && flags.trace_format != "jsonl") {
      fail("--trace-format must be text or jsonl");
    }
    return true;
  }
  if (set.spans && arg == "--spans") {
    flags.spans_path = next_value(args, i, fail);
    return true;
  }
  if (set.timings && arg == "--timings") {
    flags.timings = true;
    return true;
  }
  if (set.quiet && arg == "--quiet") {
    flags.quiet = true;
    return true;
  }
  if (set.bench_gate && (arg == "--out" || arg == "--metrics")) {
    flags.out_path = next_value(args, i, fail);
    return true;
  }
  if (set.bench_gate && arg == "--check-against") {
    flags.check_against = next_value(args, i, fail);
    return true;
  }
  if (set.bench_gate && arg == "--max-regression") {
    flags.max_regression_pct = std::stod(next_value(args, i, fail));
    return true;
  }
  if (set.bench_gate && arg == "--reps-scale") {
    flags.reps_scale = std::stod(next_value(args, i, fail));
    return true;
  }
  if (set.pin_threads && arg == "--pin-threads") {
    flags.pin_threads = true;
    return true;
  }
  return false;
}

std::string common_flags_usage(const CommonFlagSet& set) {
  std::string out;
  const auto add = [&out](const char* fragment) {
    if (!out.empty()) out += " ";
    out += fragment;
  };
  if (set.seed) add("[--seed <s>]");
  if (set.threads) add("[--threads <k>]");
  if (set.metrics) add("[--metrics <file|->]");
  if (set.report_mode) add("[--report json]");
  if (set.report_path) add("[--report <file|->]");
  if (set.trace) add("[--trace <file|->] [--trace-format text|jsonl]");
  if (set.spans) add("[--spans <file|->]");
  if (set.timings) add("[--timings]");
  if (set.quiet) add("[--quiet]");
  if (set.bench_gate) {
    add("[--out <file|->] [--check-against <baseline.json>]");
    add("[--max-regression <pct>] [--reps-scale <x>]");
  }
  if (set.pin_threads) add("[--pin-threads]");
  return out;
}

}  // namespace treeaa::tools
