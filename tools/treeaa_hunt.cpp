// treeaa_hunt — coverage-guided adversary search.
//
// usage:
//   treeaa_hunt --spec <file|-> [--objective <name>] [--population N]
//               [--generations N] [--elites N] [--corpus-max N]
//               [--out <file|->] [--corpus <file|->] [--no-crashes]
//               [--seed <s>] [--threads <k>] [--quiet]
//   treeaa_hunt --replay <file|->
//
// Search mode: loads a hunt spec ({"scenario": {...}, "search": {...}},
// docs/HUNT.md), evolves adversaries against the pinned scenario, writes
// the `treeaa.hunt_report/1` document to --out (default stdout) and the
// worst-case corpus (`treeaa.hunt_corpus/1` JSONL) to --corpus. CLI flags
// override the spec file's "search" values. Exit 0 on a completed search.
//
// Replay mode: re-runs every corpus line and compares against the recorded
// outcome. Exit 0 when every line reproduces exactly, 1 on any mismatch —
// the determinism gate CI runs over hunt artifacts.
//
// Everything is deterministic: the report and corpus depend only on the
// spec and the flags; --threads never changes a byte of either.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common_flags.h"
#include "hunt/report.h"
#include "hunt/scenario.h"
#include "hunt/search.h"
#include "obs/json.h"
#include "obs/sink.h"

namespace {

using namespace treeaa;

const tools::CommonFlagSet kHuntFlags = {
    .seed = true, .threads = true, .quiet = true};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage:\n"
               "  treeaa_hunt --spec <file|-> [--objective "
               "rounds_to_eps|final_spread|ledger_margin]\n"
               "              [--population N] [--generations N] "
               "[--elites N] [--corpus-max N]\n"
               "              [--out <file|->] [--corpus <file|->] "
               "[--no-crashes]\n"
               "              "
            << tools::common_flags_usage(kHuntFlags)
            << "\n"
               "  treeaa_hunt --replay <file|->\n";
  std::exit(2);
}

std::string read_all(const std::string& path) {
  if (path == "-") {
    std::ostringstream os;
    os << std::cin.rdbuf();
    return os.str();
  }
  std::ifstream in(path);
  if (!in) usage("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int replay(const std::string& path, bool quiet) {
  const std::string text = read_all(path);
  std::size_t line_no = 0;
  std::size_t mismatches = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string error;
    const auto entry = hunt::corpus_entry_from_json(line, &error);
    if (!entry.has_value()) {
      std::cerr << "line " << line_no << ": " << error << "\n";
      ++mismatches;
      continue;
    }
    const std::string verdict = hunt::replay_corpus_entry(*entry);
    if (!verdict.empty()) {
      std::cerr << "line " << line_no << ": " << verdict << "\n";
      ++mismatches;
    } else if (!quiet) {
      std::cerr << "line " << line_no << ": ok\n";
    }
  }
  if (line_no == 0) usage("corpus '" + path + "' is empty");
  if (!quiet) {
    std::cerr << "replayed " << line_no << " line(s), " << mismatches
              << " mismatch(es)\n";
  }
  return mismatches == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);

  std::string spec_path;
  std::string replay_path;
  std::string out_path;
  std::string corpus_path;
  hunt::HuntOptions cli;          // CLI-level overrides
  bool objective_set = false, population_set = false;
  bool generations_set = false, elites_set = false, corpus_max_set = false;
  bool no_crashes = false;
  tools::CommonFlags common;
  const tools::UsageFn fail = [](const std::string& m) { usage(m); };

  for (std::size_t i = 0; i < args.size(); ++i) {
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) usage("missing value after " + args[i]);
      return args[++i];
    };
    if (args[i] == "--spec") {
      spec_path = next();
    } else if (args[i] == "--replay") {
      replay_path = next();
    } else if (args[i] == "--out") {
      out_path = next();
    } else if (args[i] == "--corpus") {
      corpus_path = next();
    } else if (args[i] == "--objective") {
      const auto o = hunt::objective_from_name(next());
      if (!o.has_value()) usage("unknown objective '" + args[i] + "'");
      cli.objective = *o;
      objective_set = true;
    } else if (args[i] == "--population") {
      cli.population = std::stoul(next());
      population_set = true;
    } else if (args[i] == "--generations") {
      cli.generations = std::stoul(next());
      generations_set = true;
    } else if (args[i] == "--elites") {
      cli.elites = std::stoul(next());
      elites_set = true;
    } else if (args[i] == "--corpus-max") {
      cli.corpus_max = std::stoul(next());
      corpus_max_set = true;
    } else if (args[i] == "--no-crashes") {
      no_crashes = true;
    } else if (tools::parse_common_flag(args, i, kHuntFlags, common, fail)) {
      // consumed
    } else {
      usage("unknown option '" + args[i] + "'");
    }
  }
  if (!replay_path.empty()) {
    if (!spec_path.empty()) usage("--replay does not take --spec");
    return replay(replay_path, common.quiet);
  }
  if (spec_path.empty()) usage("--spec is required");
  out_path = obs::resolve_metrics_path(std::move(out_path));
  if (out_path.empty()) out_path.push_back('-');

  try {
    hunt::Scenario scenario;
    hunt::HuntOptions options;
    std::string error;
    if (!hunt::load_hunt_spec(read_all(spec_path), &scenario, &options,
                              &error)) {
      usage(error);
    }
    if (objective_set) options.objective = cli.objective;
    if (population_set) options.population = cli.population;
    if (generations_set) options.generations = cli.generations;
    if (elites_set) options.elites = cli.elites;
    if (corpus_max_set) options.corpus_max = cli.corpus_max;
    if (no_crashes) options.allow_crashes = false;
    if (common.seed_set) options.seed = common.seed;
    options.threads = common.threads;

    const hunt::MaterializedScenario m = hunt::materialize(scenario);
    const hunt::HuntResult result = hunt::run_hunt(m, options);

    if (!obs::write_sink(out_path,
                         hunt::hunt_report_json(m, options, result))) {
      return 2;
    }
    if (!corpus_path.empty() &&
        !obs::write_sink(corpus_path,
                         hunt::corpus_jsonl(m, options, result))) {
      return 2;
    }

    if (!common.quiet) {
      std::cerr << "hunt '" << scenario.name << "': " << result.evaluations
                << " evaluations (" << result.duplicates << " deduped), "
                << result.coverage.size() << " coverage buckets, corpus "
                << result.corpus.size() << "\n";
      for (const auto& [name, score] : result.baselines) {
        std::cerr << "  baseline " << name << ": "
                  << obs::json_number(score) << "\n";
      }
      if (result.best.eval.ok) {
        std::cerr << "  best " << obs::json_number(result.best.score)
                  << " (generation " << result.best.generation
                  << "): " << result.best.spec_json << "\n";
      } else {
        std::cerr << "  no candidate evaluated successfully\n";
      }
    }
    return result.best.eval.ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
