// The obs/run flags shared by every tool in this directory.
//
// Every tool historically re-spelled the same observability and run knobs
// (--metrics/--report/--trace/--trace-format/--spans/--timings/--threads/
// --seed/--quiet) with its own else-if chain. This header is the one
// parser: a tool declares which of the shared flags it accepts
// (CommonFlagSet), folds parse_common_flag() into its argument loop, and
// composes its usage text from common_flags_usage() — so help text and
// error strings ("missing value after --seed", "--report only supports
// 'json'", "--trace-format must be text or jsonl") are uniform across
// tools by construction.
//
// Tool-specific flags stay in the tool; only the shared vocabulary lives
// here. The two --report spellings (a mode for treeaa_cli, a file path for
// the server/report tools) are both supported — a tool enables exactly one.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace treeaa::tools {

/// Which shared flags a tool accepts. Enable report_mode or report_path,
/// never both.
struct CommonFlagSet {
  bool seed = false;         // --seed <s>
  bool threads = false;      // --threads <k>
  bool metrics = false;      // --metrics <file|->
  bool report_mode = false;  // --report json
  bool report_path = false;  // --report <file|->
  bool trace = false;        // --trace <file|-> and --trace-format
  bool spans = false;        // --spans <file|->
  bool timings = false;      // --timings
  bool quiet = false;        // --quiet
  /// The perf-gate vocabulary shared by the pinned benchmarks:
  /// --out (alias --metrics), --check-against, --max-regression,
  /// --reps-scale. Mutually exclusive with `metrics` (both claim --metrics).
  bool bench_gate = false;
  /// --pin-threads: pin perf::WorkerPool workers to CPUs (see
  /// WorkerPool::set_pin_threads). The caller applies flags.pin_threads.
  bool pin_threads = false;
};

/// Parsed values, defaulted exactly as the tools always defaulted them.
struct CommonFlags {
  std::uint64_t seed = 1;
  /// True once --seed appeared (tools with an optional override need to
  /// distinguish "default 1" from "explicit 1").
  bool seed_set = false;
  std::size_t threads = 1;
  std::string metrics_path;
  bool report_json = false;
  std::string report_path;
  std::string trace_path;
  std::string trace_format = "text";
  std::string spans_path;
  bool timings = false;
  bool quiet = false;
  std::string out_path;            // --out / --metrics (bench_gate)
  std::string check_against;       // --check-against <baseline.json>
  double max_regression_pct = 25;  // --max-regression <pct>
  double reps_scale = 1.0;         // --reps-scale <x>
  bool pin_threads = false;        // --pin-threads
};

/// The tool's usage() — prints and exits, never returns.
using UsageFn = std::function<void(const std::string&)>;

/// Tries to consume args[i] (and its value, advancing i) as one of the
/// enabled shared flags. Returns true when consumed; false when args[i] is
/// not a shared flag (the tool's chain continues). Malformed values call
/// `fail` with the historical message.
bool parse_common_flag(const std::vector<std::string>& args, std::size_t& i,
                       const CommonFlagSet& set, CommonFlags& flags,
                       const UsageFn& fail);

/// The usage-line fragment for the enabled flags, in canonical order:
/// "[--seed <s>] [--threads <k>] [--metrics <file|->] ...". Empty set,
/// empty string.
[[nodiscard]] std::string common_flags_usage(const CommonFlagSet& set);

}  // namespace treeaa::tools
