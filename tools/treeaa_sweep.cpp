// treeaa_sweep — run a declarative experiment sweep (docs/SWEEPS.md).
//
//   treeaa_sweep --spec <file|-> [--threads N] [--run-threads K]
//                [--out <file|->] [--chunk N] [--full] [--timings]
//                [--trace <file|->] [--trace-format text|jsonl]
//                [--seed S] [--quiet]
//                [--expand-only]
//
// Reads a sweep spec (JSON), expands it into its flat cell grid, executes
// every cell on a fixed pool of worker threads, and writes the aggregated
// "treeaa.sweep_report/1" document to --out (default: the TREEAA_METRICS
// environment variable, else stdout). The report is byte-identical for any
// --threads value — determinism comes from per-cell RNG streams forked from
// the sweep seed by cell index, never from scheduling — unless --timings
// adds the wall-clock section.
//
//   --threads 0     use all hardware threads
//   --run-threads K worker lanes inside each cell's engine (default 1);
//                   the thread budget is shared: --threads is the total,
//                   and cells run on threads/K workers
//   --full          run with per-cell run reports and embed them in rows
//   --trace F       record every cell's engine transcript (treeaa_cli's
//                   --trace vocabulary) into F, cells in index order, each
//                   preceded by a cell header line. Transcripts carry no
//                   wall-clock data, so the file is byte-identical for any
//                   --threads value.
//   --seed S        override the spec's seed
//   --expand-only   print the cell count and exit without running
//   --quiet         suppress the human summary on stderr
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common_flags.h"
#include "exp/report.h"
#include "exp/spec.h"
#include "exp/sweep.h"
#include "obs/sink.h"

namespace {

using namespace treeaa;

const tools::CommonFlagSet kSweepFlags = {.seed = true,
                                          .threads = true,
                                          .trace = true,
                                          .timings = true,
                                          .quiet = true};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage:\n"
               "  treeaa_sweep --spec <file|-> [--out <file|->] "
               "[--run-threads K]\n"
               "               [--chunk N] [--full] [--expand-only]\n"
               "               "
            << tools::common_flags_usage(kSweepFlags) << "\n";
  std::exit(2);
}

std::string read_all(const std::string& path) {
  if (path == "-") {
    std::ostringstream os;
    os << std::cin.rdbuf();
    return os.str();
  }
  std::ifstream in(path);
  if (!in) usage("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);

  std::string spec_path;
  std::string out_path;
  exp::SweepOptions sweep_opts;
  exp::ReportOptions report_opts;
  bool expand_only = false;
  tools::CommonFlags flags;
  const tools::UsageFn fail = [](const std::string& m) { usage(m); };

  for (std::size_t i = 0; i < args.size(); ++i) {
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) usage("missing value after " + args[i]);
      return args[++i];
    };
    if (args[i] == "--spec") {
      spec_path = next();
    } else if (args[i] == "--out") {
      out_path = next();
    } else if (args[i] == "--run-threads") {
      sweep_opts.run_threads = std::stoul(next());
    } else if (args[i] == "--chunk") {
      sweep_opts.chunk = std::stoul(next());
    } else if (args[i] == "--full") {
      sweep_opts.collect_reports = true;
      report_opts.include_cell_reports = true;
    } else if (args[i] == "--expand-only") {
      expand_only = true;
    } else if (tools::parse_common_flag(args, i, kSweepFlags, flags, fail)) {
      // consumed
    } else {
      usage("unknown option '" + args[i] + "'");
    }
  }
  sweep_opts.threads = flags.threads;
  report_opts.include_timings = flags.timings;
  const std::string& trace_path = flags.trace_path;
  const std::string& trace_format = flags.trace_format;
  const bool quiet = flags.quiet;
  if (spec_path.empty()) usage("--spec is required");
  out_path = obs::resolve_metrics_path(std::move(out_path));
  if (out_path.empty()) out_path.push_back('-');

  try {
    exp::SweepSpec spec = exp::spec_from_json(read_all(spec_path));
    if (flags.seed_set) spec.seed = flags.seed;
    const std::vector<exp::Cell> cells = exp::expand(spec);
    if (expand_only) {
      std::cout << cells.size() << "\n";
      return 0;
    }

    if (!trace_path.empty()) sweep_opts.trace_format = trace_format;

    const exp::SweepResult result = exp::run_sweep(spec, cells, sweep_opts);
    const std::string json =
        exp::sweep_report_json(spec, result, report_opts);
    if (!obs::write_sink(out_path, json)) return 2;
    if (!trace_path.empty()) {
      // One document, cells in index order. Headers follow the format:
      // a "# cell I" comment line for text, a flat {"ev":"cell",...} event
      // line for jsonl — so a jsonl file stays line-parseable throughout.
      std::string traces;
      for (const exp::CellResult& r : result.cells) {
        if (trace_format == "jsonl") {
          traces += "{\"ev\":\"cell\",\"cell\":" +
                    std::to_string(r.cell.index) + "}\n";
        } else {
          traces += "# cell " + std::to_string(r.cell.index) + "\n";
        }
        traces += r.trace;
      }
      if (!obs::write_sink(trace_path, traces)) return 2;
    }

    std::size_t failures = 0;
    std::size_t aa_violations = 0;
    for (const exp::CellResult& r : result.cells) {
      if (!r.ok) {
        ++failures;
      } else if (!r.aa_ok()) {
        ++aa_violations;
      }
    }
    if (!quiet) {
      std::cerr << "sweep '" << spec.name << "': " << result.cells.size()
                << " cells on " << result.timings.threads << " thread(s) in "
                << result.timings.wall_ms << " ms; " << failures
                << " failures, " << aa_violations << " AA violations\n";
    }
    return failures == 0 && aa_violations == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
