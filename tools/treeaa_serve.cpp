// treeaa_serve — the multi-tenant agreement-as-a-service daemon.
//
//   treeaa_serve (--unix <path> | --tcp <port>) ...
//               [--topology <name>=<file>] [--graph <name>=<file>]
//               [--gen <name>=<family>:<size>[:<seed>]]
//               [--gen-graph <name>=<family>:<size>[:<seed>]]
//               [--threads <k>] [--max-inflight <k>] [--max-queue <k>]
//               [--batch <k>] [--ledger] [--report <file|->] [--timings]
//               [--spans <file|->] [--port-file <file>] [--quiet]
//
// Boots the epoll event loop of src/serve/server.h over an AF_UNIX and/or
// loopback-TCP listener, serves agreement instances for every protocol in
// the harness registry against the named topology catalog, and exits on
// SIGTERM/SIGINT after a graceful drain (finish the queue, flush every
// reply). With no catalog flags the daemon serves a single "default"
// topology: the seed-1 random tree on 101 vertices.
//
// --tcp 0 binds an ephemeral port; --port-file writes the resolved port for
// scripts that need to find the daemon. The exit status is 0 only when
// every completed instance passed its agreement check ("agreement as a
// service" means a failed check is a server failure, not a client result);
// --ledger additionally replays the convergence ledger (src/exp/ledger.h)
// over every completed sync-AA instance and fails the exit status on any
// theory-vs-observed violation.
// --report writes `treeaa.serve_report/1`; without --timings the document
// is canonical — byte-identical across same-workload runs at any
// --threads (docs/SERVE.md).
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common_flags.h"
#include "graphs/generators.h"
#include "graphs/serialization.h"
#include "obs/sink.h"
#include "obs/span.h"
#include "serve/server.h"
#include "trees/generators.h"
#include "trees/serialization.h"

namespace {

using namespace treeaa;

serve::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_drain();
}

const tools::CommonFlagSet kServeFlags = {.threads = true,
                                          .report_path = true,
                                          .spans = true,
                                          .timings = true,
                                          .quiet = true};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  treeaa_serve (--unix <path> | --tcp <port>) ...\n"
      "              [--topology <name>=<file>] [--graph <name>=<file>]\n"
      "              [--gen <name>=<family>:<size>[:<seed>]]\n"
      "              [--gen-graph <name>=<family>:<size>[:<seed>]]\n"
      "              [--max-inflight <k>] [--max-queue <k>]\n"
      "              [--batch <k>] [--ledger] [--port-file <file>]\n"
      "              " << tools::common_flags_usage(kServeFlags) << "\n"
      "\n"
      "tree families: path star binary caterpillar spider random\n"
      "graph families: tree clique_chain block_random cactus\n";
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) usage("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Splits "name=value"; both halves must be non-empty.
std::pair<std::string, std::string> split_assign(const std::string& s,
                                                 const char* flag) {
  const auto eq = s.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == s.size()) {
    usage(std::string(flag) + " needs <name>=<value>");
  }
  return {s.substr(0, eq), s.substr(eq + 1)};
}

/// Parses "<family>:<size>[:<seed>]".
struct GenSpec {
  std::string family;
  std::size_t size = 0;
  std::uint64_t seed = 1;
};

GenSpec parse_gen(const std::string& s, const char* flag) {
  GenSpec spec;
  std::istringstream is(s);
  std::string item;
  std::vector<std::string> parts;
  while (std::getline(is, item, ':')) parts.push_back(item);
  if (parts.size() < 2 || parts.size() > 3) {
    usage(std::string(flag) + " needs <family>:<size>[:<seed>]");
  }
  spec.family = parts[0];
  spec.size = std::stoul(parts[1]);
  if (parts.size() == 3) spec.seed = std::stoull(parts[2]);
  return spec;
}

LabeledTree gen_tree(const GenSpec& spec) {
  Rng rng(spec.seed);
  for (const TreeFamily f : all_tree_families()) {
    if (spec.family == tree_family_name(f)) {
      return make_family_tree(f, spec.size, rng);
    }
  }
  usage("unknown tree family '" + spec.family + "'");
}

graphs::Graph gen_graph(const GenSpec& spec) {
  Rng rng(spec.seed);
  for (const graphs::GraphFamily f : graphs::all_graph_families()) {
    if (spec.family == graphs::graph_family_name(f)) {
      return graphs::make_family_graph(f, spec.size, rng);
    }
  }
  usage("unknown graph family '" + spec.family + "'");
}

int run(const std::vector<std::string>& args) {
  serve::Catalog catalog;
  serve::ServerOptions opts;
  std::string port_file;
  tools::CommonFlags flags;
  const tools::UsageFn fail = [](const std::string& m) { usage(m); };

  for (std::size_t i = 0; i < args.size(); ++i) {
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) usage("missing value after " + args[i]);
      return args[++i];
    };
    if (args[i] == "--unix") {
      opts.unix_path = next();
    } else if (args[i] == "--tcp") {
      opts.tcp_port = static_cast<std::uint16_t>(std::stoul(next()));
    } else if (args[i] == "--topology") {
      const auto [name, file] = split_assign(next(), "--topology");
      catalog.add_tree(name, tree_from_text(read_file(file)));
    } else if (args[i] == "--graph") {
      const auto [name, file] = split_assign(next(), "--graph");
      catalog.add_graph(name, graphs::graph_from_text(read_file(file)));
    } else if (args[i] == "--gen") {
      const auto [name, spec] = split_assign(next(), "--gen");
      catalog.add_tree(name, gen_tree(parse_gen(spec, "--gen")));
    } else if (args[i] == "--gen-graph") {
      const auto [name, spec] = split_assign(next(), "--gen-graph");
      catalog.add_graph(name, gen_graph(parse_gen(spec, "--gen-graph")));
    } else if (args[i] == "--max-inflight") {
      opts.max_inflight_per_tenant = std::stoul(next());
    } else if (args[i] == "--max-queue") {
      opts.max_queue = std::stoul(next());
    } else if (args[i] == "--batch") {
      opts.max_batch = std::stoul(next());
    } else if (args[i] == "--ledger") {
      opts.ledger = true;
    } else if (args[i] == "--port-file") {
      port_file = next();
    } else if (tools::parse_common_flag(args, i, kServeFlags, flags, fail)) {
      // consumed
    } else {
      usage("unknown option '" + args[i] + "'");
    }
  }
  opts.threads = flags.threads;
  const std::string& report_path = flags.report_path;
  const std::string& spans_path = flags.spans_path;
  const bool timings = flags.timings;
  const bool quiet = flags.quiet;
  if (opts.unix_path.empty() && !opts.tcp_port.has_value()) {
    usage("need --unix and/or --tcp");
  }
  if (catalog.empty()) {
    Rng rng(1);
    catalog.add_tree("default", make_random_tree(101, rng));
  }

  obs::SpanSink span_sink;
  if (!spans_path.empty()) opts.spans = &span_sink;

  serve::Server server(std::move(catalog), std::move(opts));
  g_server = &server;
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.tcp_port() << "\n";
  }
  if (!quiet) {
    std::cerr << "treeaa_serve: listening"
              << (server.tcp_port() != 0
                      ? " tcp:" + std::to_string(server.tcp_port())
                      : "")
              << "\n";
  }

  server.run();
  g_server = nullptr;

  const auto& report = server.report();
  if (!report_path.empty()) {
    if (!obs::write_sink(report_path, report.to_json(timings) + "\n")) {
      return 2;
    }
  }
  if (!spans_path.empty()) {
    if (!obs::write_sink(spans_path, span_sink.to_chrome_json())) return 2;
  }
  if (!quiet) {
    std::cerr << "treeaa_serve: drained — started "
              << report.total(&serve::TenantStats::started) << ", completed "
              << report.total(&serve::TenantStats::completed) << ", rejected "
              << report.total(&serve::TenantStats::rejected)
              << ", check failures "
              << report.total(&serve::TenantStats::check_failures) << "\n";
  }
  return server.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    return run(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
