// treeaa_load — concurrent-session load generator for treeaa_serve.
//
//   treeaa_load (--unix <path> | --tcp <port>)
//              [--sessions <k>] [--connections <k>] [--concurrency <k>]
//              [--protocol <name>]... [--topology <name>] [--tenants <k>]
//              [--n <k>] [--t <k>] [--adversary <name>] [--corrupt <k>]
//              [--inputs spread|random] [--eps <x>] [--known-range <x>]
//              [--seed <k>] [--min-complete <k>] [--max-p99-ms <x>]
//              [--expect-reject] [--report <file|->] [--quiet]
//
// Opens `--connections` client connections and drives `--sessions` total
// agreement instances across them, keeping up to `--concurrency` sessions
// in flight at once (default: all of them — the 10k-concurrent acceptance
// run is just `--sessions 10000`). Sessions round-robin over the
// `--protocol` list (repeat the flag to mix protocols) and over
// `--tenants` synthetic tenant names; each session gets seed
// `--seed + index`.
//
// Every session resolves as completed (a ResultReply), rejected (a typed
// RejectReply), or lost (connection closed). The run PASSES — exit 0 —
// only when completions reach `--min-complete` (default: all sessions),
// every completed instance reports ok=true (the server-side
// check_agreement verdict), no session is lost, and, when `--max-p99-ms`
// is given, the client-observed p99 open-to-reply latency is under the
// bound. With --expect-reject the gate inverts for admission-control
// tests: rejects count toward min-complete and completions are unbounded.
// --report writes a `treeaa.load_report/1` JSON document.
#include <poll.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common_flags.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "serve/client.h"

namespace {

using namespace treeaa;

const tools::CommonFlagSet kLoadFlags = {.seed = true,
                                         .report_path = true,
                                         .quiet = true};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  treeaa_load (--unix <path> | --tcp <port>)\n"
      "             [--sessions <k>] [--connections <k>] [--concurrency <k>]\n"
      "             [--protocol <name>]... [--topology <name>] [--tenants <k>]\n"
      "             [--n <k>] [--t <k>] [--adversary none|silent|fuzz]\n"
      "             [--corrupt <k>] [--inputs spread|random] [--eps <x>]\n"
      "             [--known-range <x>] [--min-complete <k>]\n"
      "             [--max-p99-ms <x>] [--expect-reject]\n"
      "             " << tools::common_flags_usage(kLoadFlags) << "\n";
  std::exit(2);
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct SessionKey {
  std::size_t conn;
  std::uint64_t session_id;
  bool operator<(const SessionKey& o) const {
    return conn != o.conn ? conn < o.conn : session_id < o.session_id;
  }
};

int run(const std::vector<std::string>& args) {
  std::string unix_path;
  std::uint16_t tcp_port = 0;
  bool have_tcp = false;
  std::size_t sessions = 1000;
  std::size_t connections = 64;
  std::size_t concurrency = 0;  // 0 = unbounded
  std::vector<std::string> protocols;
  std::size_t tenants = 4;
  serve::OpenRequest base;
  base.topology = "default";
  base.n = 8;
  base.t = 2;
  base.adversary = "none";
  std::size_t min_complete = SIZE_MAX;  // default: all sessions
  double max_p99_ms = 0.0;              // 0 = no latency gate
  bool expect_reject = false;
  tools::CommonFlags flags;
  const tools::UsageFn fail = [](const std::string& m) { usage(m); };

  for (std::size_t i = 0; i < args.size(); ++i) {
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) usage("missing value after " + args[i]);
      return args[++i];
    };
    if (args[i] == "--unix") {
      unix_path = next();
    } else if (args[i] == "--tcp") {
      tcp_port = static_cast<std::uint16_t>(std::stoul(next()));
      have_tcp = true;
    } else if (args[i] == "--sessions") {
      sessions = std::stoul(next());
    } else if (args[i] == "--connections") {
      connections = std::stoul(next());
    } else if (args[i] == "--concurrency") {
      concurrency = std::stoul(next());
    } else if (args[i] == "--protocol") {
      protocols.push_back(next());
    } else if (args[i] == "--topology") {
      base.topology = next();
    } else if (args[i] == "--tenants") {
      tenants = std::stoul(next());
    } else if (args[i] == "--n") {
      base.n = std::stoull(next());
    } else if (args[i] == "--t") {
      base.t = std::stoull(next());
    } else if (args[i] == "--adversary") {
      base.adversary = next();
    } else if (args[i] == "--corrupt") {
      base.corrupt = std::stoull(next());
    } else if (args[i] == "--inputs") {
      const std::string& v = next();
      if (v == "spread") {
        base.inputs = serve::InputKind::kSpread;
      } else if (v == "random") {
        base.inputs = serve::InputKind::kRandom;
      } else {
        usage("--inputs must be spread or random");
      }
    } else if (args[i] == "--eps") {
      base.eps = std::stod(next());
    } else if (args[i] == "--known-range") {
      base.known_range = std::stod(next());
    } else if (args[i] == "--min-complete") {
      min_complete = std::stoul(next());
    } else if (args[i] == "--max-p99-ms") {
      max_p99_ms = std::stod(next());
    } else if (args[i] == "--expect-reject") {
      expect_reject = true;
    } else if (tools::parse_common_flag(args, i, kLoadFlags, flags, fail)) {
      // consumed
    } else {
      usage("unknown option '" + args[i] + "'");
    }
  }
  const std::uint64_t seed_base = flags.seed;
  const std::string& report_path = flags.report_path;
  const bool quiet = flags.quiet;
  if (unix_path.empty() && !have_tcp) usage("need --unix or --tcp");
  if (sessions == 0) usage("--sessions must be positive");
  if (connections == 0) usage("--connections must be positive");
  if (protocols.empty()) protocols.push_back("tree_aa");
  if (tenants == 0) tenants = 1;
  if (min_complete == SIZE_MAX) min_complete = sessions;
  connections = std::min(connections, sessions);

  std::vector<serve::Client> clients;
  clients.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    clients.push_back(unix_path.empty()
                          ? serve::Client::connect_tcp(tcp_port)
                          : serve::Client::connect_unix(unix_path));
  }

  // Latency is open()-to-reply, in nanoseconds, client-observed: it
  // includes queueing in the daemon, which is the number a tenant feels.
  obs::Histogram latency(obs::ScopeTimer::wall_bounds());
  std::map<SessionKey, std::uint64_t> open_ns;
  std::size_t opened = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t lost = 0;
  std::size_t check_failures = 0;
  std::size_t inflight = 0;
  std::map<std::string, std::uint64_t> rejects;
  const std::uint64_t start_ns = now_ns();

  auto open_more = [&]() {
    while (opened < sessions &&
           (concurrency == 0 || inflight < concurrency)) {
      const std::size_t conn = opened % connections;
      if (clients[conn].broken()) {
        // Account the never-opened session as lost rather than spinning.
        ++opened;
        ++lost;
        continue;
      }
      serve::OpenRequest req = base;
      req.tenant = "tenant-" + std::to_string(opened % tenants);
      req.protocol = protocols[opened % protocols.size()];
      req.seed = seed_base + opened;
      const std::uint64_t sid = clients[conn].open(req);
      open_ns[{conn, sid}] = now_ns();
      ++opened;
      ++inflight;
    }
  };

  std::vector<serve::Client::Event> events;
  std::vector<pollfd> pfds(connections);
  open_more();
  while (completed + rejected + lost < sessions) {
    std::size_t live = 0;
    for (std::size_t c = 0; c < connections; ++c) {
      if (clients[c].broken() ||
          (clients[c].inflight() == 0 && !clients[c].wants_write())) {
        continue;
      }
      pfds[live].fd = clients[c].fd();
      pfds[live].events = POLLIN;
      if (clients[c].wants_write()) pfds[live].events |= POLLOUT;
      ++live;
    }
    if (live == 0) break;  // every remaining session is on a broken conn
    (void)::poll(pfds.data(), live, 1000);

    for (std::size_t c = 0; c < connections; ++c) {
      if (clients[c].broken()) continue;
      events.clear();
      clients[c].pump(events);
      const std::uint64_t reply_ns = now_ns();
      for (const auto& event : events) {
        const SessionKey key{c, event.session_id};
        const auto it = open_ns.find(key);
        if (it != open_ns.end()) {
          latency.observe(static_cast<double>(reply_ns - it->second));
          open_ns.erase(it);
        }
        --inflight;
        switch (event.kind) {
          case serve::Client::Event::Kind::kResult:
            ++completed;
            if (!event.result.ok) ++check_failures;
            break;
          case serve::Client::Event::Kind::kReject:
            ++rejected;
            ++rejects[serve::reject_code_name(event.reject.code)];
            break;
          case serve::Client::Event::Kind::kClosed:
            ++lost;
            break;
        }
      }
    }
    open_more();
  }
  // Sessions stranded on broken connections never produced kClosed events
  // for opens we counted but the client dropped before queueing; reconcile.
  lost += sessions - (completed + rejected + lost);

  const double elapsed_s =
      static_cast<double>(now_ns() - start_ns) / 1e9;
  const double p50 = latency.percentile(50.0);
  const double p90 = latency.percentile(90.0);
  const double p99 = latency.percentile(99.0);

  bool pass = check_failures == 0 && lost == 0;
  const std::size_t gate_count = expect_reject ? completed + rejected
                                               : completed;
  if (gate_count < min_complete) pass = false;
  if (!expect_reject && rejected != 0) pass = false;
  if (max_p99_ms > 0.0 && p99 / 1e6 > max_p99_ms) pass = false;

  if (!report_path.empty()) {
    std::string json;
    obs::JsonWriter w(json);
    w.begin_object();
    w.key("schema");
    w.value("treeaa.load_report/1");
    w.key("sessions");
    w.value(static_cast<std::uint64_t>(sessions));
    w.key("connections");
    w.value(static_cast<std::uint64_t>(connections));
    w.key("completed");
    w.value(static_cast<std::uint64_t>(completed));
    w.key("rejected");
    w.value(static_cast<std::uint64_t>(rejected));
    w.key("lost");
    w.value(static_cast<std::uint64_t>(lost));
    w.key("check_failures");
    w.value(static_cast<std::uint64_t>(check_failures));
    w.key("rejects");
    w.begin_object();
    for (const auto& [name, count] : rejects) {
      w.key(name);
      w.value(count);
    }
    w.end_object();
    w.key("elapsed_s");
    w.value(elapsed_s);
    w.key("sessions_per_s");
    w.value(elapsed_s > 0.0 ? static_cast<double>(completed + rejected) /
                                  elapsed_s
                            : 0.0);
    w.key("latency_ns");
    w.begin_object();
    w.key("p50");
    w.value(p50);
    w.key("p90");
    w.value(p90);
    w.key("p99");
    w.value(p99);
    w.end_object();
    w.key("pass");
    w.value(pass);
    w.end_object();
    if (!obs::write_sink(report_path, json + "\n")) return 2;
  }
  if (!quiet) {
    std::cerr << "treeaa_load: " << completed << "/" << sessions
              << " completed, " << rejected << " rejected, " << lost
              << " lost, " << check_failures << " check failures in "
              << elapsed_s << "s (p99 " << p99 / 1e6 << " ms) — "
              << (pass ? "PASS" : "FAIL") << "\n";
  }
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    return run(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
