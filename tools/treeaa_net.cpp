// treeaa_net — run TreeAA (or BlockAA) end to end over the real socket
// transport.
//
//   treeaa_net <file|-> --t <t> --inputs <l1,l2,...>
//              [--graph]
//              [--adversary none|silent|fuzz] [--faults <spec>]
//              [--seed <s>] [--timeout-ms <m>] [--engine bdh|classic]
//              [--threads <k>] [--report <file|->] [--no-crosscheck]
//              [--trace <file|->] [--trace-format text|jsonl]
//              [--spans <file|->] [--timings] [--quiet]
//
// Every party runs on its own thread behind the loopback mesh
// (docs/NET.md); `--faults` injects deterministic link faults, e.g.
// "drop=0.1,delay=0.05,dup=0.02,corrupt=0.02,crash=3@4". After the run the
// honest outputs are checked for Validity and 1-Agreement AND — unless
// --no-crosscheck — compared vertex for vertex against a same-seed
// sim::Engine reference execution. The exit status is 0 only when both
// hold; `--report` writes the machine-readable "treeaa.net_report/1"
// document (the TREEAA_METRICS environment variable is the usual fallback
// destination; reports are byte-reproducible across identical runs).
//
// Observability parity with treeaa_cli (docs/OBSERVABILITY.md): --trace
// records the cross-check replay engine's transcript ("treeaa.trace/1";
// requires the cross-check), --spans writes the Chrome trace-event timeline
// covering every socket party thread plus the replay engine, --timings adds
// the barrier-wait / wire-lag histograms to the report's "timing" section.
// Only --timings changes report bytes; a timing-free report stays
// byte-reproducible with any of these attached.
//
// With --graph the input file is a block graph (docs/GRAPHS.md text
// format) and the deployment runs BlockAA: the inner TreeAA executes on
// the agreement tree A(G) over the same socket mesh, outputs are
// gate-mapped back to G vertices, and the Validity / 1-Agreement verdict
// is taken in the graph metric (graphs::check_agreement).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/table.h"
#include "common_flags.h"
#include "graphs/serialization.h"
#include "net/deploy.h"
#include "obs/probe.h"
#include "obs/sink.h"
#include "obs/span.h"
#include "sim/trace.h"
#include "trees/serialization.h"

namespace {

using namespace treeaa;

const tools::CommonFlagSet kNetFlags = {.seed = true,
                                        .threads = true,
                                        .report_path = true,
                                        .trace = true,
                                        .spans = true,
                                        .timings = true,
                                        .quiet = true};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  treeaa_net <file|-> --t <t> --inputs <l1,l2,...>\n"
      "             [--graph]\n"
      "             [--adversary none|silent|fuzz] [--corrupt <k<=t>]\n"
      "             [--faults <spec>]\n"
      "             [--timeout-ms <m>] [--engine bdh|classic] "
      "[--no-crosscheck]\n"
      "             " << tools::common_flags_usage(kNetFlags) << "\n"
      "\n"
      "fault spec keys: drop, delay, dup, corrupt, reorder (probabilities),\n"
      "delay-rounds=<k>, crash=<party>@<round> (repeatable)\n";
  std::exit(2);
}

std::string read_all(const std::string& path) {
  if (path == "-") {
    std::ostringstream os;
    os << std::cin.rdbuf();
    return os.str();
  }
  std::ifstream in(path);
  if (!in) usage("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(s);
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int run(const std::vector<std::string>& args) {
  if (args.empty()) usage("need <file|->");
  const std::string topology_text = read_all(args[0]);

  bool graph_mode = false;
  std::size_t t = 0;
  std::vector<std::string> input_labels;
  std::string adversary = "none";
  std::string faults_spec;
  std::string engine = "bdh";
  net::DeployConfig cfg;
  tools::CommonFlags flags;
  const tools::UsageFn fail = [](const std::string& m) { usage(m); };
  for (std::size_t i = 1; i < args.size(); ++i) {
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) usage("missing value after " + args[i]);
      return args[++i];
    };
    if (args[i] == "--t") {
      t = std::stoul(next());
    } else if (args[i] == "--graph") {
      graph_mode = true;
    } else if (args[i] == "--inputs") {
      input_labels = split_csv(next());
    } else if (args[i] == "--adversary") {
      adversary = next();
    } else if (args[i] == "--corrupt") {
      cfg.corrupt_count = std::stoul(next());
    } else if (args[i] == "--faults") {
      faults_spec = next();
    } else if (args[i] == "--timeout-ms") {
      cfg.round_timeout_ms = std::stoi(next());
      if (cfg.round_timeout_ms <= 0) usage("--timeout-ms must be positive");
    } else if (args[i] == "--engine") {
      engine = next();
    } else if (args[i] == "--no-crosscheck") {
      cfg.crosscheck = false;
    } else if (tools::parse_common_flag(args, i, kNetFlags, flags, fail)) {
      // consumed
    } else {
      usage("unknown option '" + args[i] + "'");
    }
  }
  cfg.seed = flags.seed;
  cfg.threads = flags.threads;
  std::string report_path = flags.report_path;
  const std::string& trace_path = flags.trace_path;
  const std::string& trace_format = flags.trace_format;
  const std::string& spans_path = flags.spans_path;
  const bool timings = flags.timings;
  const bool quiet = flags.quiet;
  if (input_labels.empty()) usage("--inputs is required");
  report_path = obs::resolve_metrics_path(std::move(report_path));
  const std::size_t n = input_labels.size();
  if (n <= 3 * t) usage("need n > 3t");

  // The two topology worlds. In graph mode the BlockIndex wraps the parsed
  // block graph; labels resolve against G, and the pretty-printed outputs
  // are G labels too — the A(G) detour stays an implementation detail.
  std::optional<LabeledTree> tree;
  std::optional<graphs::BlockIndex> index;
  if (graph_mode) {
    index.emplace(graphs::graph_from_text(topology_text));
  } else {
    tree.emplace(tree_from_text(topology_text));
  }
  auto find_vertex = [&](const std::string& label) {
    return graph_mode ? index->graph().find(label) : tree->find(label);
  };
  auto vertex_label = [&](VertexId v) -> const std::string& {
    return graph_mode ? index->graph().label(v) : tree->label(v);
  };

  std::vector<VertexId> inputs;
  for (const auto& label : input_labels) {
    const auto v = find_vertex(label);
    if (!v.has_value()) usage("no vertex labeled '" + label + "'");
    inputs.push_back(*v);
  }

  const auto kind = net::parse_adversary(adversary);
  if (!kind.has_value()) usage("unknown adversary '" + adversary + "'");
  cfg.adversary = *kind;
  if (engine == "classic") {
    cfg.protocol.engine = core::RealEngineKind::kClassicHalving;
  } else if (engine != "bdh") {
    usage("unknown engine '" + engine + "'");
  }
  try {
    cfg.faults = net::FaultPlan::parse(faults_spec);
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  }
  if (!trace_path.empty() && !cfg.crosscheck) {
    usage("--trace records the replay transcript and needs the cross-check");
  }

  sim::RecordingTracer text_tracer;
  obs::JsonlTracer jsonl_tracer;
  obs::SpanSink span_sink;
  if (!trace_path.empty()) {
    cfg.sim_tracer = trace_format == "jsonl"
                         ? static_cast<sim::Tracer*>(&jsonl_tracer)
                         : static_cast<sim::Tracer*>(&text_tracer);
  }
  if (!spans_path.empty()) cfg.spans = &span_sink;
  cfg.timings = timings;

  const auto result = graph_mode
                          ? net::run_block_aa_net(*index, inputs, t, cfg)
                          : net::run_tree_aa_net(*tree, inputs, t, cfg);

  if (!report_path.empty()) {
    if (!obs::write_sink(report_path, result.report.to_json(timings) + "\n")) {
      return 2;
    }
  }
  if (!trace_path.empty()) {
    if (!obs::write_sink(trace_path, trace_format == "jsonl"
                                         ? jsonl_tracer.text()
                                         : text_tracer.text())) {
      return 2;
    }
  }
  if (!spans_path.empty()) {
    if (!obs::write_sink(spans_path, span_sink.to_chrome_json())) return 2;
  }
  if (report_path != "-" && trace_path != "-" && spans_path != "-") {
    if (!quiet) {
      Table table({"party", "input", "output", "role"});
      for (PartyId p = 0; p < n; ++p) {
        const bool corrupt = std::find(result.corrupt.begin(),
                                       result.corrupt.end(),
                                       p) != result.corrupt.end();
        const bool crashed = std::find(result.crashed.begin(),
                                       result.crashed.end(),
                                       p) != result.crashed.end();
        table.row({std::to_string(p), input_labels[p],
                   result.outputs[p].has_value()
                       ? vertex_label(*result.outputs[p])
                       : "(corrupt)",
                   corrupt ? "byzantine" : crashed ? "crashed" : "honest"});
      }
      std::cout << table.render();
    }
    const auto& totals = result.report.totals;
    std::cout << "rounds: " << result.rounds << "  frames: "
              << totals.frames_sent << "  bytes: " << totals.bytes_sent
              << "  dropped: " << totals.dropped
              << "  corrupted: " << totals.corrupted
              << "  stale: " << totals.stale_discarded
              << "  timeouts: " << result.report.timeouts_total << "\n"
              << "validity: " << (result.check.valid ? "ok" : "VIOLATED")
              << "  1-agreement: "
              << (result.check.one_agreement ? "ok" : "VIOLATED")
              << "  sim cross-check: "
              << (cfg.crosscheck
                      ? (result.sim_match ? "match" : "MISMATCH")
                      : "skipped")
              << "\n";
  }
  return result.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    return run(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
