// treeaa_trace — offline convergence-ledger analyzer (docs/OBSERVABILITY.md).
//
//   treeaa_trace --report <file|-> [--spans <file>] [--transcript <file>]
//                [--eps X] [--out <file|->] [--strict-fekete] [--quiet]
//
// Ingests a "treeaa.run_report/1" document (and, optionally, the matching
// Chrome-trace span file and JSONL transcript), rebuilds the per-round
// convergence ledger, checks every observed diameter against the proven
// bounds (Fekete round budget, Theorem 3's RealAA product envelope, the
// 2^-k halving baseline, final eps-agreement), and writes the
// "treeaa.trace_report/1" document to --out (default: stdout).
//
//   --eps X          override the report's agreement target (vertex
//                    protocols default to eps = 1)
//   --spans F        Chrome trace JSON produced by --spans; echoed into the
//                    report as event/track statistics after a parse check
//   --transcript F   "treeaa.trace/1" JSONL transcript; echoed as line and
//                    message counts after a parse check
//   --strict-fekete  also fail (exit 1) when the run reached eps in fewer
//                    rounds than the Fekete lower bound. Fekete is
//                    worst-case over executions, so this is only sound on
//                    adversarial scenarios — hence opt-in.
//   --quiet          suppress the human summary on stderr
//
// Exit status: 0 when every check passed, 1 on any bound violation (the
// mislabeled-trace oracle), 2 on usage or input errors.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common_flags.h"
#include "exp/json_value.h"
#include "exp/ledger.h"
#include "obs/json.h"
#include "obs/sink.h"

namespace {

using namespace treeaa;

const tools::CommonFlagSet kTraceFlags = {.report_path = true,
                                          .spans = true,
                                          .quiet = true};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage:\n"
               "  treeaa_trace --report <file|-> [--transcript <file>]\n"
               "               [--eps X] [--out <file|->] [--strict-fekete]\n"
               "               "
            << tools::common_flags_usage(kTraceFlags) << "\n";
  std::exit(2);
}

std::string read_all(const std::string& path) {
  if (path == "-") {
    std::ostringstream os;
    os << std::cin.rdbuf();
    return os.str();
  }
  std::ifstream in(path);
  if (!in) usage("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Counts the span/flow events and track names of a Chrome trace-event
/// document ({"traceEvents": [...]}); exits on malformed JSON so CI's
/// "the trace parses" check is this tool, not an external validator.
exp::TraceStats span_stats(const std::string& text, exp::TraceStats stats) {
  const auto doc = exp::JsonValue::parse(text);
  if (!doc.has_value() || !doc->is_object()) {
    usage("--spans file is not a JSON object");
  }
  const exp::JsonValue* events = doc->find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    usage("--spans file has no traceEvents array");
  }
  std::uint64_t spans = 0;
  std::uint64_t flows = 0;
  for (const exp::JsonValue& e : events->items()) {
    const exp::JsonValue* ph = e.find("ph");
    if (ph == nullptr || !ph->is_string()) continue;
    const std::string& kind = ph->as_string();
    if (kind == "X" || kind == "i") {
      ++spans;
    } else if (kind == "s" || kind == "f") {
      ++flows;
    } else if (kind == "M") {
      const exp::JsonValue* name = e.find("name");
      if (name == nullptr || !name->is_string() ||
          name->as_string() != "process_name") {
        continue;
      }
      const exp::JsonValue* args = e.find("args");
      const exp::JsonValue* process =
          args == nullptr ? nullptr : args->find("name");
      if (process != nullptr && process->is_string()) {
        stats.tracks.push_back(process->as_string());
      }
    }
  }
  stats.span_events = spans;
  stats.flow_events = flows;
  return stats;
}

/// Counts transcript lines and send/byz events of a "treeaa.trace/1" JSONL
/// transcript; every line must round-trip through the flat-object parser.
exp::TraceStats transcript_stats(const std::string& text,
                                 exp::TraceStats stats) {
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = obs::parse_flat_json_object(line);
    if (!fields.has_value()) {
      usage("--transcript line " + std::to_string(events + 1) +
            " is not a flat JSON object");
    }
    ++events;
    for (const auto& [key, value] : *fields) {
      if (key == "ev" && (value == "send" || value == "byz")) ++messages;
    }
  }
  stats.transcript_events = events;
  stats.transcript_messages = messages;
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);

  std::string transcript_path;
  std::string out_path;
  std::optional<double> eps_override;
  bool strict_fekete = false;
  tools::CommonFlags flags;
  const tools::UsageFn fail = [](const std::string& m) { usage(m); };

  for (std::size_t i = 0; i < args.size(); ++i) {
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) usage("missing value after " + args[i]);
      return args[++i];
    };
    if (args[i] == "--transcript") {
      transcript_path = next();
    } else if (args[i] == "--out") {
      out_path = next();
    } else if (args[i] == "--eps") {
      eps_override = std::stod(next());
    } else if (args[i] == "--strict-fekete") {
      strict_fekete = true;
    } else if (tools::parse_common_flag(args, i, kTraceFlags, flags, fail)) {
      // consumed — --report here is the input run-report path, --spans the
      // matching Chrome-trace file (the same spellings the producers write).
    } else {
      usage("unknown option '" + args[i] + "'");
    }
  }
  const std::string& report_path = flags.report_path;
  const std::string& spans_path = flags.spans_path;
  const bool quiet = flags.quiet;
  if (report_path.empty()) usage("--report is required");
  if (out_path.empty()) out_path.push_back('-');

  try {
    const auto doc = exp::JsonValue::parse(read_all(report_path));
    if (!doc.has_value()) usage("--report file is not valid JSON");
    const auto input = exp::ledger_input_from_json(*doc, eps_override);
    if (!input.has_value()) {
      usage("--report is not a usable treeaa.run_report/1 document "
            "(missing protocol/n/t/rounds or non-positive eps)");
    }

    exp::TraceStats stats;
    if (!spans_path.empty()) {
      stats = span_stats(read_all(spans_path), std::move(stats));
    }
    if (!transcript_path.empty()) {
      stats = transcript_stats(read_all(transcript_path), std::move(stats));
    }

    const exp::Ledger ledger = exp::build_ledger(*input);
    if (!obs::write_sink(out_path, exp::trace_report_json(ledger, stats))) {
      return 2;
    }

    if (!quiet) {
      std::cerr << "trace '" << input->protocol << "': n = " << input->n
                << ", t = " << input->t << ", rounds = " << input->rounds
                << ", D0/eps = " << input->d0 << "/" << input->eps
                << "; Fekete lower bound " << ledger.fekete_lower_rounds
                << " round(s)";
      if (ledger.rounds_to_eps.has_value()) {
        std::cerr << ", reached eps at round " << *ledger.rounds_to_eps
                  << (ledger.within_fekete ? "" : " (faster than Fekete)");
      }
      std::cerr << "; " << ledger.violations << " violation(s)\n";
      for (const exp::LedgerCheck& c : ledger.checks) {
        std::cerr << "  [" << (c.ok ? "ok" : "VIOLATION") << "] " << c.name
                  << ": " << c.detail << "\n";
      }
    }
    if (strict_fekete && !ledger.within_fekete) {
      if (!quiet) {
        std::cerr << "  [VIOLATION] strict_fekete: reached eps at round "
                  << (ledger.rounds_to_eps.has_value()
                          ? std::to_string(*ledger.rounds_to_eps)
                          : std::string("-"))
                  << " < lower bound " << ledger.fekete_lower_rounds << "\n";
      }
      return 1;
    }
    return ledger.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
