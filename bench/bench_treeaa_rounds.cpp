// E2 — TreeAA round complexity (paper Theorem 4).
//
// Regenerates the headline scaling result: measured TreeAA rounds as a
// function of |V(T)| across tree families, against
//   * the Theorem 4 envelope 2 * ceil(7 log2(2|V|)/log2 log2(2|V|)), and
//   * the prior state of the art O(log D(T)) (the NR-style baseline's round
//     budget on the same tree).
// The within_fekete column is the convergence ledger's budget-feasibility
// verdict (exp/ledger.h): rounds >= R*(D(T)) per Theorem 2.
//
// Expected shape: TreeAA's rounds grow sublogarithmically in |V| (the
// log/loglog curve), are independent of the tree family beyond |V| and D,
// and beat the baseline whenever D(T) is polynomial in |V(T)| (paths,
// caterpillars, spiders) while the baseline wins on very shallow trees
// (stars) — exactly the paper's D(T) ∈ |V|^Theta(1) optimality condition.
#include <cmath>
#include <iostream>

#include "baselines/iterated_tree_aa.h"
#include "common/table.h"
#include "core/api.h"
#include "exp/ledger.h"
#include "harness/runner.h"
#include "obs/bench_report.h"
#include "realaa/rounds.h"
#include "trees/generators.h"

namespace {

using namespace treeaa;

void scaling_table(obs::BenchReporter& reporter) {
  std::cout << "=== E2a: TreeAA measured rounds vs |V| (n = 7, t = 2) ===\n";
  Table table({"family", "|V|", "D(T)", "rounds(TreeAA)", "thm4_envelope",
               "within_fekete", "rounds(NR baseline)"});
  Rng rng(2025);
  const std::size_t n = 7, t = 2;
  for (const TreeFamily family : all_tree_families()) {
    for (std::size_t size : {10u, 100u, 1000u, 10000u}) {
      const auto tree = make_family_tree(family, size, rng);
      const auto inputs = harness::spread_vertex_inputs(tree, n);
      const auto run = core::run_tree_aa(
          tree, inputs, t, {}, nullptr,
          reporter.next_run(std::string("e2a ") + tree_family_name(family) +
                            " |V|=" + std::to_string(size)));
      const auto check = core::check_agreement(
          tree, inputs, run.honest_outputs());
      const std::size_t envelope =
          2 * realaa::theorem3_round_bound(
                  static_cast<double>(2 * tree.n()), 1.0);
      baselines::IteratedTreeConfig base_cfg{n, t};
      // Ledger verdict for the vertex protocol: D = D(T), eps = 1.
      const bool within = exp::within_fekete_bound(
          static_cast<double>(tree.diameter()), 1.0, n, t, run.rounds);
      table.row({tree_family_name(family), std::to_string(tree.n()),
                 std::to_string(tree.diameter()), std::to_string(run.rounds),
                 std::to_string(envelope), within ? "yes" : "NO",
                 std::to_string(base_cfg.rounds(tree))});
      if (!check.ok()) {
        std::cout << "!! AA violated on " << tree_family_name(family)
                  << " size " << size << "\n";
      }
    }
  }
  std::cout << render_for_output(table) << "\n";
}

void growth_table() {
  std::cout << "=== E2b: growth rate on paths (rounds vs log|V|/loglog|V|) "
               "===\n";
  Table table({"|V|", "rounds", "log2|V|", "log2|V|/log2log2|V|",
               "rounds per unit"});
  const std::size_t n = 7, t = 2;
  for (std::size_t size = 16; size <= 262144; size *= 4) {
    const auto rounds =
        core::tree_aa_rounds(make_path(size), n, t);
    const double l = std::log2(static_cast<double>(size));
    const double unit = l / std::log2(l);
    table.row({std::to_string(size), std::to_string(rounds), fmt_double(l),
               fmt_double(unit), fmt_double(static_cast<double>(rounds) / unit)});
  }
  std::cout << render_for_output(table)
            << "(the last column flattening out is the Theorem 4 shape)\n\n";
}

void resilience_table(obs::BenchReporter& reporter) {
  std::cout << "=== E2c: rounds vs resilience on a 1000-vertex path ===\n";
  const auto tree = make_path(1000);
  Table table({"n", "t", "rounds(TreeAA)", "within_fekete", "1-agreement"});
  for (std::size_t n : {4u, 7u, 13u, 22u, 31u}) {
    const std::size_t t = (n - 1) / 3;
    const auto inputs = harness::spread_vertex_inputs(tree, n);
    const auto run =
        core::run_tree_aa(tree, inputs, t, {}, nullptr,
                          reporter.next_run("e2c n=" + std::to_string(n)));
    const auto check =
        core::check_agreement(tree, inputs, run.honest_outputs());
    table.row({std::to_string(n), std::to_string(t),
               std::to_string(run.rounds),
               exp::within_fekete_bound(static_cast<double>(tree.diameter()),
                                        1.0, n, t, run.rounds)
                   ? "yes"
                   : "NO",
               check.ok() ? "yes" : "NO"});
  }
  std::cout << render_for_output(table);
  std::cout << "(rounds are resilience-independent: the iteration count "
               "depends only on D and eps)\n";
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("treeaa_rounds", argc, argv);
  scaling_table(reporter);
  growth_table();
  resilience_table(reporter);
  return reporter.flush() ? 0 : 1;
}
