// E1 — RealAA convergence and round complexity (paper Theorem 3, Lemma 5,
// and the Fekete lower bound it is measured against).
//
// Regenerates two tables:
//
//   Table E1a: rounds to 1-agreement as a function of the input spread D,
//     compared with the Theorem 3 closed-form bound
//     ceil(7 log2(D)/log2 log2(D)) and the exact Fekete lower bound
//     R*(D) = min{R : K(R, D) <= 1}. The within_fekete column is the
//     convergence ledger's verdict (exp/ledger.h): the protocol's round
//     count is consistent with Theorem 2 iff rounds >= R*(D).
//
//   Table E1b: per-iteration honest range under (a) no adversary, (b) the
//     optimal budget-split adversary, against the per-iteration theoretical
//     envelope t_i/(n-2t) and the end-to-end bound t^R/(R^R (n-2t)^R)
//     (Lemma 5). The measured trajectory should hug the envelope's shape.
//
// Expected shape (the paper's claims): measured rounds grow like
// log D / log log D, sandwiched between the lower bound and Theorem 3's
// bound; the adversarial range trajectory decays roughly like the Lemma 5
// product rather than collapsing instantly.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bounds/fekete.h"
#include "common/table.h"
#include "exp/ledger.h"
#include "harness/runner.h"
#include "obs/bench_report.h"
#include "realaa/adversaries.h"
#include "realaa/rounds.h"

namespace {

using namespace treeaa;

realaa::Config config_for(std::size_t n, std::size_t t, double D) {
  realaa::Config cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.eps = 1.0;
  cfg.known_range = D;
  return cfg;
}

void table_e1a(obs::BenchReporter& reporter) {
  std::cout << "=== E1a: RealAA rounds vs spread D (n = 16, t = 5, eps = 1) "
               "===\n";
  const std::size_t n = 16, t = 5;
  Table table({"D", "iterations", "rounds", "thm3_bound", "fekete_lower",
               "within_fekete", "final_range"});
  for (double D : {10.0, 100.0, 1e3, 1e4, 1e5, 1e6}) {
    const auto cfg = config_for(n, t, D);
    const auto inputs = harness::spread_real_inputs(n, 0.0, D);
    realaa::SplitAdversary::Options opts;
    opts.config = cfg;
    for (std::size_t i = 0; i < t; ++i) {
      opts.corrupt.push_back(static_cast<PartyId>(n - 1 - i));
    }
    const auto run = harness::run_real_aa(
        cfg, inputs, std::make_unique<realaa::SplitAdversary>(opts),
        reporter.next_run("e1a D=" + fmt_double(D)));
    table.row({fmt_double(D), std::to_string(cfg.iterations()),
               std::to_string(run.rounds),
               std::to_string(realaa::theorem3_round_bound(D, 1.0)),
               std::to_string(bounds::lower_bound_rounds(D, n, t)),
               exp::within_fekete_bound(D, 1.0, n, t, run.rounds) ? "yes"
                                                                  : "NO",
               fmt_double(run.output_range())});
  }
  std::cout << render_for_output(table) << "\n";
}

void table_e1b(obs::BenchReporter& reporter) {
  std::cout << "=== E1b: per-iteration honest range (n = 13, t = 4, D = 1e6) "
               "===\n";
  const std::size_t n = 13, t = 4;
  const double D = 1e6;
  const auto cfg = config_for(n, t, D);
  const auto inputs = harness::spread_real_inputs(n, 0.0, D);
  const std::size_t iters = cfg.iterations();

  // Optimal split: t_i as balanced as possible.
  realaa::SplitAdversary::Options opts;
  opts.config = cfg;
  for (std::size_t i = 0; i < t; ++i) {
    opts.corrupt.push_back(static_cast<PartyId>(n - 1 - i));
  }
  std::vector<std::size_t> schedule(iters, t / iters);
  for (std::size_t i = 0; i < t % iters; ++i) ++schedule[i];
  opts.schedule = schedule;

  const auto adversarial = harness::run_real_aa(
      cfg, inputs, std::make_unique<realaa::SplitAdversary>(opts),
      reporter.next_run("e1b split"));
  const auto honest_run = harness::run_real_aa(cfg, inputs, nullptr,
                                               reporter.next_run("e1b honest"));

  auto range_at = [&](const harness::RealRun& run, std::size_t k) {
    double lo = 1e300, hi = -1e300;
    for (const auto& h : run.histories) {
      if (h.empty()) continue;
      lo = std::min(lo, h[k]);
      hi = std::max(hi, h[k]);
    }
    return hi - lo;
  };

  Table table({"iter", "t_i", "range(no adv)", "range(split adv)",
               "envelope t_i/(n-2t)"});
  double envelope = D;
  for (std::size_t k = 0; k <= iters; ++k) {
    if (k > 0) {
      const double t_k = static_cast<double>(schedule[k - 1]);
      envelope *= std::max(t_k, 0.0) / static_cast<double>(n - 2 * t);
    }
    table.row({std::to_string(k),
               k == 0 ? "-" : std::to_string(schedule[k - 1]),
               fmt_double(range_at(honest_run, k)),
               fmt_double(range_at(adversarial, k)), fmt_double(envelope)});
  }
  std::cout << render_for_output(table);
  const double lemma5 =
      D * std::exp(static_cast<double>(iters) *
                   (std::log(static_cast<double>(t)) -
                    std::log(static_cast<double>(iters)) -
                    std::log(static_cast<double>(n - 2 * t))));
  std::cout << "Lemma 5 end-to-end bound D*t^R/(R^R (n-2t)^R): "
            << fmt_double(lemma5) << "\n\n";
}

void table_e1c(obs::BenchReporter& reporter) {
  std::cout << "=== E1c: rounds across (n, t) at D = 1e4 ===\n";
  Table table({"n", "t", "iterations", "rounds", "fekete_lower",
               "within_fekete", "final_range"});
  for (std::size_t n : {4u, 7u, 13u, 25u, 40u, 64u}) {
    const std::size_t t = (n - 1) / 3;
    const double D = 1e4;
    const auto cfg = config_for(n, t, D);
    const auto inputs = harness::spread_real_inputs(n, 0.0, D);
    realaa::SplitAdversary::Options opts;
    opts.config = cfg;
    for (std::size_t i = 0; i < t; ++i) {
      opts.corrupt.push_back(static_cast<PartyId>(n - 1 - i));
    }
    const auto run = harness::run_real_aa(
        cfg, inputs, std::make_unique<realaa::SplitAdversary>(opts),
        reporter.next_run("e1c n=" + std::to_string(n)));
    table.row({std::to_string(n), std::to_string(t),
               std::to_string(cfg.iterations()), std::to_string(run.rounds),
               std::to_string(bounds::lower_bound_rounds(D, n, t)),
               exp::within_fekete_bound(D, 1.0, n, t, run.rounds) ? "yes"
                                                                  : "NO",
               fmt_double(run.output_range())});
  }
  std::cout << render_for_output(table) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("realaa_convergence", argc, argv);
  table_e1a(reporter);
  table_e1b(reporter);
  table_e1c(reporter);
  return reporter.flush() ? 0 : 1;
}
