// E8 — ablations of the design choices called out in DESIGN.md.
//
//   E8a  update rule: trimmed mean (paper's outline) vs trimmed midpoint.
//        Both satisfy AA; the constants differ slightly.
//   E8b  iteration budget: the paper-sufficient rule (R^R >= D/eps, from
//        Theorem 3's proof) vs the tight rule using (n, t) — the paper's
//        "improving the constants" future-work knob.
//   E8c  value-distribution mechanism: gradecast vs naive broadcast. The
//        naive protocol (broadcast + trim + mean, no graded consistency, no
//        detection) lets every Byzantine party re-equivocate in *every*
//        round, so its per-round contraction is stuck at t/(n-2t) — with
//        t ~ n/3 that is ~1 — and within RealAA's round budget it misses
//        eps-agreement by orders of magnitude. This is the measured reason
//        the gradecast mechanism (and its detect-and-deny memory) is
//        load-bearing for Theorem 3.
#include <algorithm>
#include <iostream>
#include <map>

#include "common/table.h"
#include "core/api.h"
#include "exp/spec.h"
#include "exp/sweep.h"
#include "harness/runner.h"
#include "realaa/adversaries.h"
#include "realaa/wire.h"
#include "sim/engine.h"
#include "trees/generators.h"

namespace {

using namespace treeaa;

realaa::Config config_for(std::size_t n, std::size_t t, double D,
                          realaa::UpdateRule rule,
                          realaa::IterationMode mode =
                              realaa::IterationMode::kPaperSufficient) {
  realaa::Config cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.eps = 1.0;
  cfg.known_range = D;
  cfg.update = rule;
  cfg.mode = mode;
  return cfg;
}

harness::RealRun attack_run(const realaa::Config& cfg,
                            bool one_per_iteration = false) {
  const auto inputs =
      harness::spread_real_inputs(cfg.n, 0.0, cfg.known_range);
  realaa::SplitAdversary::Options opts;
  opts.config = cfg;
  for (std::size_t i = 0; i < cfg.t; ++i) {
    opts.corrupt.push_back(static_cast<PartyId>(cfg.n - 1 - i));
  }
  if (one_per_iteration) opts.schedule.assign(cfg.iterations(), 1);
  return harness::run_real_aa(
      cfg, inputs, std::make_unique<realaa::SplitAdversary>(opts));
}

void table_update_rule() {
  // A non-zero final range needs an inconsistency in *every* iteration
  // (any clean iteration collapses the range to 0), so the configurations
  // below keep t >= R and schedule one equivocator per iteration. Phrased
  // as a sweep (src/exp/): one scenario per (n, D) point — the points are
  // chosen pairs, not a cross product — with the update rule as the swept
  // axis and the split1 adversary reproducing attack_run's schedule.
  std::cout << "=== E8a: trimmed mean vs trimmed midpoint (one equivocator "
               "per iteration, t >= R) ===\n";
  Table table({"n", "t", "D", "iters", "range(mean)", "range(midpoint)"});
  const std::vector<std::pair<std::size_t, double>> points = {
      {13, 100.0}, {25, 1e4}, {25, 1e6}, {31, 1e6}};

  exp::SweepSpec spec;
  spec.name = "bench-e8a";
  for (const auto& [n, D] : points) {
    exp::Scenario s;
    s.protocols = {exp::Protocol::kRealAA};
    s.ranges = {D};
    s.updates = {realaa::UpdateRule::kTrimmedMean,
                 realaa::UpdateRule::kTrimmedMidpoint};
    s.n_values = {n};
    s.adversaries = {exp::AdversaryKind::kSplit1};
    spec.scenarios.push_back(s);
  }

  const auto result = exp::run_sweep(spec);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& mean = result.cells[2 * i];      // update is the inner axis
    const auto& midpoint = result.cells[2 * i + 1];
    table.row({std::to_string(points[i].first),
               std::to_string(mean.cell.t), fmt_double(points[i].second),
               std::to_string(mean.round_budget / 3),
               fmt_double(mean.spread), fmt_double(midpoint.spread)});
  }
  std::cout << render_for_output(table)
            << "(both rules stay within eps = 1; the constants differ)\n\n";
}

void table_iteration_mode() {
  std::cout << "=== E8b: paper-sufficient vs tight iteration budgets ===\n";
  Table table({"n", "t", "D", "rounds(paper)", "rounds(tight)", "saving"});
  for (std::size_t n : {4u, 13u, 40u}) {
    const std::size_t t = (n - 1) / 3;
    for (double D : {100.0, 1e4, 1e8}) {
      const auto paper =
          config_for(n, t, D, realaa::UpdateRule::kTrimmedMean);
      const auto tight =
          config_for(n, t, D, realaa::UpdateRule::kTrimmedMean,
                     realaa::IterationMode::kTight);
      table.row({std::to_string(n), std::to_string(t), fmt_double(D),
                 std::to_string(paper.rounds()),
                 std::to_string(tight.rounds()),
                 fmt_ratio(static_cast<double>(paper.rounds()) /
                           static_cast<double>(
                               std::max<std::size_t>(tight.rounds(), 1)))});
    }
  }
  std::cout << render_for_output(table) << "\n";
}

// --- E8c: the deliberately naive distribution mechanism ----------------------
//
// One round per iteration: broadcast the value, take the first valid value
// per sender, trim t per side, average. No grades, no memory. Kept local to
// this bench on purpose: it exists to be broken, not to be used.

class NaiveAAProcess final : public sim::Process {
 public:
  NaiveAAProcess(std::size_t n, std::size_t t, std::size_t rounds,
                 PartyId self, double input)
      : n_(n), t_(t), rounds_(rounds), self_(self), value_(input) {}

  void on_round_begin(Round r, sim::Mailer& out) override {
    if (r > rounds_) return;
    out.broadcast(realaa::encode_value(value_));
  }

  void on_round_end(Round r, std::span<const sim::Envelope> inbox) override {
    if (r > rounds_) return;
    std::map<PartyId, double> seen;
    for (const sim::Envelope& e : inbox) {
      if (seen.contains(e.from)) continue;
      const auto v = realaa::decode_value(e.payload);
      if (v.has_value()) seen.emplace(e.from, *v);
    }
    std::vector<double> w;
    w.reserve(seen.size());
    for (const auto& [p, v] : seen) w.push_back(v);
    value_ =
        realaa::trimmed_update(std::move(w), t_, realaa::UpdateRule::kTrimmedMean);
  }

  [[nodiscard]] double value() const { return value_; }

 private:
  std::size_t n_, t_, rounds_;
  PartyId self_;
  double value_;
};

/// Re-equivocates every round: sends the observed honest minimum to the
/// currently-low half and the maximum to the currently-high half. Against
/// gradecast this burns a party per round; against naive broadcast it is
/// free, forever.
class NaiveSplitAdversary final : public sim::Adversary {
 public:
  explicit NaiveSplitAdversary(std::vector<PartyId> corrupt)
      : corrupt_(std::move(corrupt)) {}

  void init(sim::RoundView& view) override {
    for (const PartyId p : corrupt_) view.corrupt(p);
  }

  void act(sim::RoundView& view) override {
    std::map<PartyId, double> observed;
    for (const sim::Envelope& e : view.queued()) {
      if (view.is_corrupt(e.from) || observed.contains(e.from)) continue;
      const auto v = realaa::decode_value(e.payload);
      if (v.has_value()) observed.emplace(e.from, *v);
    }
    if (observed.empty()) return;
    std::vector<std::pair<double, PartyId>> by_value;
    double lo = 1e300, hi = -1e300;
    for (const auto& [p, v] : observed) {
      by_value.emplace_back(v, p);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    std::sort(by_value.begin(), by_value.end());
    for (const PartyId c : corrupt_) {
      for (std::size_t i = 0; i < by_value.size(); ++i) {
        const double x = i < by_value.size() / 2 ? lo : hi;
        view.send(c, by_value[i].second, realaa::encode_value(x));
      }
      // Corrupt parties also message each other/theirselves: irrelevant.
    }
  }

 private:
  std::vector<PartyId> corrupt_;
};

void table_naive() {
  std::cout << "=== E8c: gradecast vs naive broadcast within the same round "
               "budget ===\n";
  Table table({"n", "t", "D", "rounds", "range(RealAA)", "range(naive)",
               "naive meets eps?"});
  for (std::size_t n : {7u, 13u, 25u}) {
    const std::size_t t = (n - 1) / 3;
    for (double D : {1e4, 1e6}) {
      const auto cfg =
          config_for(n, t, D, realaa::UpdateRule::kTrimmedMean);
      const std::size_t rounds = cfg.rounds();

      const auto real_run = attack_run(cfg);

      // Naive protocol with the *same* number of synchronous rounds.
      sim::Engine engine(n, std::max<std::size_t>(t, 1));
      std::vector<NaiveAAProcess*> procs(n);
      const auto inputs = harness::spread_real_inputs(n, 0.0, D);
      for (PartyId p = 0; p < n; ++p) {
        auto proc =
            std::make_unique<NaiveAAProcess>(n, t, rounds, p, inputs[p]);
        procs[p] = proc.get();
        engine.set_process(p, std::move(proc));
      }
      std::vector<PartyId> victims;
      for (std::size_t i = 0; i < t; ++i) {
        victims.push_back(static_cast<PartyId>(n - 1 - i));
      }
      engine.set_adversary(std::make_unique<NaiveSplitAdversary>(victims));
      engine.run(static_cast<Round>(rounds));
      double lo = 1e300, hi = -1e300;
      for (PartyId p = 0; p < n; ++p) {
        if (engine.is_corrupt(p)) continue;
        lo = std::min(lo, procs[p]->value());
        hi = std::max(hi, procs[p]->value());
      }
      table.row({std::to_string(n), std::to_string(t), fmt_double(D),
                 std::to_string(rounds), fmt_double(real_run.output_range()),
                 fmt_double(hi - lo), hi - lo <= 1.0 ? "yes" : "NO"});
    }
  }
  std::cout << render_for_output(table)
            << "(the NO rows are why the detect-and-deny gradecast "
               "mechanism is necessary)\n";
}

void table_engine_swap() {
  // The paper's §7 remark, executable: TreeAA composed over the classic
  // halving engine remains a correct AA protocol — just slower. Phrased as
  // a sweep with the engine as the swept axis; tree_seed makes both engines
  // run on the identical chainy tree per size.
  std::cout << "=== E8d: TreeAA over swapped real-valued engines ===\n";
  Table table({"|V|", "D(T)", "rounds(BDH engine)", "rounds(classic engine)",
               "both satisfy AA?"});
  const std::vector<std::size_t> sizes = {50, 500, 5000};

  exp::SweepSpec spec;
  spec.name = "bench-e8d";
  spec.seed = 88;
  exp::Scenario s;
  s.protocols = {exp::Protocol::kTreeAA};
  s.engines = {core::RealEngineKind::kGradecastBdh,
               core::RealEngineKind::kClassicHalving};
  exp::TreeSpec tree;
  tree.families = {"chainy"};
  tree.sizes = sizes;
  tree.tree_seed = 88;
  tree.chain_bias = 0.9;
  s.tree = tree;
  s.n_values = {7};
  s.t_values = {2};
  spec.scenarios.push_back(s);

  const auto result = exp::run_sweep(spec);
  // Engine is outside the size axis: BDH cells first, then classic.
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto& fast = result.cells[i];
    const auto& slow = result.cells[sizes.size() + i];
    const bool ok = fast.aa_ok() && slow.aa_ok();
    table.row({std::to_string(fast.tree_n),
               std::to_string(fast.tree_diameter),
               std::to_string(fast.rounds), std::to_string(slow.rounds),
               ok ? "yes" : "NO"});
  }
  std::cout << render_for_output(table)
            << "(the reduction is engine-independent — §7's remark)\n";
}

}  // namespace

int main() {
  table_update_rule();
  table_iteration_mode();
  table_naive();
  table_engine_swap();
  return 0;
}
