// Serve-plane throughput: sessions/second through the full treeaa_serve
// stack — session framing, admission control, dispatch, instance
// execution, reply — measured end to end over a real AF_UNIX socket.
//
//   bench_serve_mux [--out <file|->] [--check-against <baseline.json>]
//                   [--max-regression <pct>] [--reps-scale <x>]
//                   [--threads <k>] [--pin-threads]
//
// One pinned scenario, `serve_mux_2k`: 2000 small tree_aa instances
// (n = 4, t = 1 on a 25-vertex random tree) admitted *sequentially* — the
// client opens session i+1 only after session i's reply arrives — so the
// number measures per-session round-trip cost through the daemon, not
// batch parallelism. The report is a `treeaa.perf_report/1` document with
// a `sessions_per_s` rate per scenario; `--check-against
// bench/perf_baseline.json` gates the run exactly like
// bench_sim_throughput --pinned (default --max-regression 25, see
// docs/PERF.md).
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common_flags.h"
#include "exp/json_value.h"
#include "obs/json.h"
#include "obs/sink.h"
#include "perf/parallel.h"
#include "serve/client.h"
#include "serve/server.h"
#include "trees/generators.h"

namespace {

using namespace treeaa;

struct MuxResult {
  std::string name;
  std::size_t sessions = 0;
  std::size_t threads = 1;
  std::size_t host_cpus = 0;  // std::thread::hardware_concurrency()
  std::size_t workers = 1;    // effective WorkerPool workers for `threads`
  std::uint64_t wall_ns = 0;
  double sessions_per_s = 0.0;
};

/// Drives `sessions` sequentially-admitted tree_aa instances through a
/// freshly booted daemon and returns the observed rate. Exits the process
/// on any non-ok reply — a throughput number for a broken run is worse
/// than no number.
MuxResult run_serve_mux(std::size_t sessions, std::size_t threads) {
  const std::string sock = "bench_serve_mux.sock";
  serve::Catalog catalog;
  Rng rng(3);
  catalog.add_tree("default", make_random_tree(25, rng));

  serve::ServerOptions opts;
  opts.unix_path = sock;
  opts.threads = threads;
  serve::Server server(std::move(catalog), std::move(opts));
  std::thread loop([&server] { server.run(); });

  serve::Client client = serve::Client::connect_unix(sock);
  serve::OpenRequest req;
  req.tenant = "bench";
  req.protocol = "tree_aa";
  req.topology = "default";
  req.n = 4;
  req.t = 1;
  req.adversary = "none";

  // Warmup faults in code paths and the first dispatch's pool lease.
  for (std::uint64_t i = 0; i < 3; ++i) {
    req.seed = 1000 + i;
    client.open(req);
    while (client.inflight() > 0 && !client.broken()) (void)client.wait(100);
  }

  MuxResult result;
  result.name = "serve_mux_2k";
  result.sessions = sessions;
  result.threads = threads;
  result.host_cpus = std::thread::hardware_concurrency();
  result.workers = perf::WorkerPool::default_workers(threads);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < sessions; ++i) {
    req.seed = i + 1;
    client.open(req);
    while (client.inflight() > 0 && !client.broken()) {
      for (const auto& event : client.wait(100)) {
        if (event.kind != serve::Client::Event::Kind::kResult ||
            !event.result.ok) {
          std::cerr << "serve_mux: session " << event.session_id
                    << " did not complete ok\n";
          std::exit(2);
        }
      }
    }
    if (client.broken()) {
      std::cerr << "serve_mux: connection broke mid-run\n";
      std::exit(2);
    }
  }
  const auto end = std::chrono::steady_clock::now();
  server.request_drain();
  loop.join();

  result.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
  result.sessions_per_s =
      result.wall_ns == 0
          ? 0.0
          : static_cast<double>(result.sessions) * 1e9 /
                static_cast<double>(result.wall_ns);
  return result;
}

std::string perf_report_json(const std::vector<MuxResult>& results) {
  std::string out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("schema");
  w.value(std::string_view("treeaa.perf_report/1"));
  w.key("bench");
  w.value(std::string_view("serve_mux_pinned"));
  w.key("scenarios");
  w.begin_array();
  for (const MuxResult& r : results) {
    w.begin_object();
    w.key("name");
    w.value(std::string_view(r.name));
    w.key("sessions");
    w.value(static_cast<std::uint64_t>(r.sessions));
    w.key("threads");
    w.value(static_cast<std::uint64_t>(r.threads));
    w.key("host_cpus");
    w.value(static_cast<std::uint64_t>(r.host_cpus));
    w.key("workers");
    w.value(static_cast<std::uint64_t>(r.workers));
    w.key("wall_ns");
    w.value(r.wall_ns);
    w.key("sessions_per_s");
    w.value(r.sessions_per_s);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out += '\n';
  return out;
}

/// Same gate contract as bench_sim_throughput: scenarios missing from the
/// baseline are reported but never fail (adding a scenario must not need a
/// lockstep baseline update); the rate key here is `sessions_per_s`.
int check_against_baseline(const std::vector<MuxResult>& results,
                           const std::string& baseline_path,
                           double max_regression_pct, std::ostream& human) {
  std::ifstream in(baseline_path);
  if (!in) {
    std::cerr << "perf gate: cannot open baseline '" << baseline_path << "'\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto doc = exp::JsonValue::parse(buffer.str());
  if (!doc.has_value() || !doc->is_object()) {
    std::cerr << "perf gate: malformed baseline '" << baseline_path << "'\n";
    return 1;
  }
  const exp::JsonValue* scenarios = doc->find("scenarios");
  if (scenarios == nullptr || !scenarios->is_array()) {
    std::cerr << "perf gate: baseline has no scenarios array\n";
    return 1;
  }

  int regressions = 0;
  for (const MuxResult& r : results) {
    double baseline = 0.0;
    for (const exp::JsonValue& s : scenarios->items()) {
      const exp::JsonValue* name = s.find("name");
      const exp::JsonValue* rate = s.find("sessions_per_s");
      if (name != nullptr && name->is_string() &&
          name->as_string() == r.name && rate != nullptr &&
          rate->is_number()) {
        baseline = rate->as_number();
      }
    }
    if (baseline <= 0.0) {
      std::cerr << "perf gate: no baseline for '" << r.name << "' (skipped)\n";
      continue;
    }
    const double floor = baseline * (1.0 - max_regression_pct / 100.0);
    const double delta_pct = (r.sessions_per_s / baseline - 1.0) * 100.0;
    human << "perf gate: " << r.name << " " << std::fixed
          << static_cast<std::uint64_t>(r.sessions_per_s)
          << " sessions/s vs baseline "
          << static_cast<std::uint64_t>(baseline) << " ("
          << (delta_pct >= 0 ? "+" : "") << delta_pct << "%)\n";
    if (r.sessions_per_s < floor) {
      std::cerr << "perf gate: FAIL " << r.name << " regressed more than "
                << max_regression_pct << "% (floor "
                << static_cast<std::uint64_t>(floor) << " sessions/s)\n";
      ++regressions;
    }
  }
  return regressions;
}

}  // namespace

int main(int argc, char** argv) {
  // Flag vocabulary from tools/common_flags, same set as
  // bench_sim_throughput --pinned; error strings match the historical
  // hand-rolled parser.
  const std::vector<std::string> args(argv + 1, argv + argc);
  tools::CommonFlagSet set;
  set.threads = true;
  set.bench_gate = true;
  set.pin_threads = true;
  tools::CommonFlags flags;
  const tools::UsageFn fail = [](const std::string& msg) {
    std::cerr << msg << "\n";
    std::exit(2);
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (tools::parse_common_flag(args, i, set, flags, fail)) continue;
    std::cerr << "unknown option '" << args[i] << "'\n";
    return 2;
  }
  if (flags.pin_threads) perf::WorkerPool::set_pin_threads(true);
  const std::string out_path =
      obs::resolve_metrics_path(std::move(flags.out_path));
  std::ostream& human = out_path == "-" ? std::cerr : std::cout;

  const auto sessions = std::max<std::size_t>(
      1, static_cast<std::size_t>(2000.0 * flags.reps_scale));
  std::vector<MuxResult> results;
  results.push_back(run_serve_mux(sessions, flags.threads));
  for (const MuxResult& r : results) {
    human << r.name << ": " << r.sessions << " sessions in "
          << r.wall_ns / 1000000 << " ms, "
          << static_cast<std::uint64_t>(r.sessions_per_s) << " sessions/s\n";
  }
  if (!out_path.empty() &&
      !obs::write_sink(out_path, perf_report_json(results))) {
    return 2;
  }
  if (!flags.check_against.empty()) {
    return check_against_baseline(results, flags.check_against,
                                  flags.max_regression_pct, human) > 0
               ? 1
               : 0;
  }
  return 0;
}
