// E3 — the round lower bound (paper Theorem 2, via Fekete's Theorem 1 /
// Corollary 1).
//
// Regenerates:
//   Table E3a: the exact lower bound R*(D, n, t) = min{R : K(R, D) <= 1}
//     against Theorem 2's closed form log2 D/(log2 log2 D + log2((n+t)/t))
//     across diameters and system sizes.
//   Table E3b: optimality gap — TreeAA's round budget on a path of diameter
//     D divided by the lower bound. The paper proves this ratio is O(1) for
//     D ∈ |V|^Theta(1) and t ∈ Theta(n); the table shows the measured
//     constant.
//   Table E3c: the optimal corruption-budget partition behind K(R, D),
//     demonstrating why the adversary spreads its budget (t_i ~ t/R).
#include <cmath>
#include <iostream>

#include "bounds/fekete.h"
#include "common/table.h"
#include "bounds/chain.h"
#include "core/tree_aa.h"
#include "realaa/real_aa.h"
#include "realaa/rounds.h"
#include "trees/generators.h"

namespace {

using namespace treeaa;

void table_e3a() {
  std::cout << "=== E3a: exact lower bound vs Theorem 2 closed form ===\n";
  Table table({"D", "n", "t", "R*(exact)", "thm2_closed_form"});
  for (double D : {16.0, 256.0, 65536.0, 1e9, 1e14}) {
    for (std::size_t n : {4u, 16u, 64u, 256u}) {
      const std::size_t t = (n - 1) / 3;
      table.row({fmt_double(D), std::to_string(n), std::to_string(t),
                 std::to_string(bounds::lower_bound_rounds(D, n, t)),
                 fmt_double(bounds::theorem2_closed_form(D, n, t))});
    }
  }
  std::cout << render_for_output(table) << "\n";
}

void table_e3b() {
  std::cout << "=== E3b: optimality gap of TreeAA on paths (t = (n-1)/3) "
               "===\n";
  Table table({"D(T)", "|V|", "lower", "TreeAA rounds", "ratio"});
  const std::size_t n = 16, t = 5;
  for (std::size_t d : {15u, 255u, 4095u, 65535u}) {
    const auto tree = make_path(d + 1);
    const std::size_t lower =
        bounds::lower_bound_rounds(static_cast<double>(d), n, t);
    const std::size_t upper = core::tree_aa_rounds(tree, n, t);
    table.row({std::to_string(d), std::to_string(tree.n()),
               std::to_string(lower), std::to_string(upper),
               fmt_ratio(static_cast<double>(upper) /
                         static_cast<double>(std::max<std::size_t>(lower, 1)))});
  }
  std::cout << render_for_output(table)
            << "(a flat ratio = asymptotic optimality, Theorem 4 vs "
               "Theorem 2)\n\n";
}

void table_e3c() {
  std::cout << "=== E3c: optimal corruption-budget partitions (t = 12, "
               "n = 37, D = 1e9) ===\n";
  Table table({"R", "best product", "ln K(R,D)", "K <= 1?"});
  const std::size_t n = 37, t = 12;
  const double D = 1e9;
  for (std::size_t r = 1; r <= 10; ++r) {
    const double log_prod = bounds::log_best_budget_product(t, r);
    const double log_k = bounds::log_fekete_k(r, D, n, t);
    table.row({std::to_string(r), fmt_double(std::exp(log_prod)),
               fmt_double(log_k), log_k <= 0 ? "yes" : "no"});
  }
  std::cout << render_for_output(table);
  std::cout << "(the first 'yes' row is the lower bound R*)\n";
}

void table_e3d() {
  // Theorem 1 made executable (one-round case): Fekete's view chain forces
  // a large output gap on ANY one-round rule; here it is driven against the
  // library's own trimmed update rules.
  std::cout << "=== E3d: the Fekete chain vs this library's one-round rules "
               "(D = 1000) ===\n";
  Table table({"n", "t", "chain len", "pigeonhole D/s", "gap(mean)",
               "gap(midpoint)", "K(1,D)"});
  const double D = 1000.0;
  for (std::size_t n : {4u, 7u, 13u, 25u, 49u}) {
    const std::size_t t = (n - 1) / 3;
    const auto chain = bounds::fekete_chain_r1(n, t, 0.0, D);
    auto rule = [&](realaa::UpdateRule r) {
      return bounds::max_adjacent_gap(
          chain, [&, r](const std::vector<double>& view) {
            return realaa::trimmed_update(view, t, r);
          });
    };
    table.row(
        {std::to_string(n), std::to_string(t), std::to_string(chain.size()),
         fmt_double(D / static_cast<double>(chain.size() - 1)),
         fmt_double(rule(realaa::UpdateRule::kTrimmedMean)),
         fmt_double(rule(realaa::UpdateRule::kTrimmedMidpoint)),
         fmt_double(std::exp(bounds::log_fekete_k(1, D, n, t)))});
  }
  std::cout << render_for_output(table)
            << "(every rule's gap >= the pigeonhole bound >= K(1,D): no "
               "one-round protocol converges faster)\n";
}

}  // namespace

int main() {
  table_e3a();
  table_e3b();
  table_e3c();
  table_e3d();
  return 0;
}
