// E6 — message and communication complexity (paper §1.2: the gradecast
// distribution mechanism of [6] costs O(R * n^3) communication).
//
// With batched gradecast every party broadcasts once per sub-round, so the
// protocol sends exactly 3 * n^2 messages per iteration; the echo/support
// messages carry n slots each, so bytes scale as Theta(R * n^3). The table
// reports measured counts and the normalized constants, which should be
// flat across n — that flatness is the complexity claim.
//
// `--threads K` runs every engine on K lanes; counts are byte-identical
// for any K (the engine's determinism contract) and the value is echoed
// in the report's "params" object. Unknown flags are an error (exit 2),
// not silently ignored.
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.h"
#include "core/api.h"
#include "harness/runner.h"
#include "obs/bench_report.h"
#include "sim/strategies.h"
#include "trees/generators.h"

namespace {

using namespace treeaa;

void realaa_table(obs::BenchReporter& reporter, std::size_t threads) {
  std::cout << "=== E6a: RealAA traffic vs n (D = 1e4, eps = 1, honest run) "
               "===\n";
  Table table({"n", "t", "rounds", "messages", "msg/(R n^2)", "bytes",
               "bytes/(R n^3)"});
  for (std::size_t n : {4u, 8u, 16u, 32u, 64u}) {
    const std::size_t t = (n - 1) / 3;
    realaa::Config cfg;
    cfg.n = n;
    cfg.t = t;
    cfg.eps = 1.0;
    cfg.known_range = 1e4;
    const auto inputs = harness::spread_real_inputs(n, 0.0, 1e4);
    const auto run = harness::run_real_aa(
        cfg, inputs, nullptr, reporter.next_run("e6a n=" + std::to_string(n)),
        threads);
    const double R = static_cast<double>(run.rounds) / 3.0;
    const double n2 = static_cast<double>(n) * static_cast<double>(n);
    const auto msgs = run.traffic.honest_messages();
    const auto bytes = run.traffic.honest_bytes();
    table.row({std::to_string(n), std::to_string(t),
               std::to_string(run.rounds), std::to_string(msgs),
               fmt_double(static_cast<double>(msgs) / (3 * R * n2)),
               std::to_string(bytes),
               fmt_double(static_cast<double>(bytes) /
                          (3 * R * n2 * static_cast<double>(n)))});
  }
  std::cout << render_for_output(table)
            << "(flat normalized columns = Theta(R n^2) messages, "
               "Theta(R n^3) bytes)\n\n";
}

void treeaa_table(obs::BenchReporter& reporter, std::size_t threads) {
  std::cout << "=== E6b: full TreeAA traffic (1000-vertex random tree) ===\n";
  Table table({"n", "t", "rounds", "messages", "bytes", "bytes/party/round"});
  Rng rng(66);
  const auto tree = make_random_tree(1000, rng);
  for (std::size_t n : {4u, 8u, 16u, 32u}) {
    const std::size_t t = (n - 1) / 3;
    const auto inputs = harness::spread_vertex_inputs(tree, n);
    const auto run =
        core::run_tree_aa(tree, inputs, t, {}, nullptr,
                          reporter.next_run("e6b n=" + std::to_string(n)),
                          sim::EngineOptions{threads});
    const auto bytes = run.traffic.honest_bytes();
    table.row({std::to_string(n), std::to_string(t),
               std::to_string(run.rounds),
               std::to_string(run.traffic.honest_messages()),
               std::to_string(bytes),
               fmt_double(static_cast<double>(bytes) /
                          (static_cast<double>(n) *
                           static_cast<double>(run.rounds)))});
  }
  std::cout << render_for_output(table) << "\n";
}

void adversarial_traffic_table(obs::BenchReporter& reporter,
                               std::size_t threads) {
  std::cout << "=== E6c: adversarial traffic is accounted separately ===\n";
  Table table({"adversary", "honest msgs", "adversary msgs"});
  realaa::Config cfg;
  cfg.n = 10;
  cfg.t = 3;
  cfg.eps = 1.0;
  cfg.known_range = 1e3;
  const auto inputs = harness::spread_real_inputs(10, 0.0, 1e3);
  {
    const auto run = harness::run_real_aa(
        cfg, inputs, nullptr, reporter.next_run("e6c none"), threads);
    table.row({"none", std::to_string(run.traffic.honest_messages()),
               std::to_string(run.traffic.adversary_messages())});
  }
  {
    auto adv = std::make_unique<sim::FuzzAdversary>(
        std::vector<PartyId>{8, 9}, 3, 50, 64);
    const auto run = harness::run_real_aa(
        cfg, inputs, std::move(adv), reporter.next_run("e6c fuzz"), threads);
    table.row({"fuzz", std::to_string(run.traffic.honest_messages()),
               std::to_string(run.traffic.adversary_messages())});
  }
  std::cout << render_for_output(table);
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("message_complexity", argc, argv);
  std::size_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value after " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threads") {
      threads = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--metrics") {
      next();  // consumed by the BenchReporter above
    } else {
      std::cerr << "unknown option '" << arg
                << "' (bench_message_complexity takes --threads K, "
                   "--metrics <file|->)\n";
      return 2;
    }
  }
  reporter.add_param("threads", threads);
  realaa_table(reporter, threads);
  treeaa_table(reporter, threads);
  adversarial_traffic_table(reporter, threads);
  return reporter.flush() ? 0 : 1;
}
