// E5 — PathsFinder (paper Lemma 4 + Figure 4).
//
// Regenerates:
//   Table E5a: R_PathsFinder measured vs the Lemma 4 budget
//     R_RealAA(2|V(T)|, 1) across tree families and sizes.
//   Table E5b: how often the honest parties end up with *different* (but
//     one-edge-apart) paths under the split adversary — the situation the
//     "wait until round R_PathsFinder" synchronization and the Figure 5
//     clamp exist for. Without an adversary the paths always coincide; the
//     attack makes genuine one-edge splits appear.
#include <algorithm>
#include <iostream>
#include <set>

#include "common/table.h"
#include "core/paths_finder.h"
#include "harness/runner.h"
#include "realaa/adversaries.h"
#include "realaa/rounds.h"
#include "trees/generators.h"
#include "trees/paths.h"

namespace {

using namespace treeaa;

void table_e5a() {
  std::cout << "=== E5a: R_PathsFinder vs the Lemma 4 budget (n = 7, t = 2) "
               "===\n";
  Table table({"family", "|V|", "rounds", "R_RealAA(2|V|,1) bound"});
  Rng rng(5);
  for (const TreeFamily family : all_tree_families()) {
    for (std::size_t size : {16u, 256u, 4096u}) {
      const auto tree = make_family_tree(family, size, rng);
      const auto inputs = harness::spread_vertex_inputs(tree, 7);
      const auto run = harness::run_paths_finder(tree, 7, 2, inputs);
      table.row({tree_family_name(family), std::to_string(tree.n()),
                 std::to_string(run.rounds),
                 std::to_string(realaa::theorem3_round_bound(
                     static_cast<double>(2 * tree.n()), 1.0))});
    }
  }
  std::cout << render_for_output(table) << "\n";
}

void table_e5b() {
  // A genuine path split needs an inconsistency in *every* RealAA
  // iteration: any clean iteration collapses the honest values to a single
  // point (identical multisets => identical trimmed means). That is exactly
  // Fekete's budget structure — the adversary must afford one fresh
  // equivocator per iteration, so we give it n = 22, t = 7 >= R.
  std::cout << "=== E5b: path splits under the split adversary (n = 22, "
               "t = 7, one equivocator per iteration, random trees) ===\n";
  Table table({"|V|", "runs", "identical paths", "one-edge splits",
               "lemma4 violations"});
  for (std::size_t size : {20u, 100u, 500u}) {
    std::size_t identical = 0, splits = 0, violations = 0;
    const std::size_t runs = 20;
    for (std::size_t trial = 0; trial < runs; ++trial) {
      Rng rng(1000 * size + trial);
      const auto tree = make_random_tree(size, rng);
      const std::size_t n = 22, t = 7;
      const auto inputs = harness::spread_vertex_inputs(tree, n);
      realaa::SplitAdversary::Options opts;
      opts.config = core::paths_finder_config(tree, n, t, {});
      for (std::size_t i = 0; i < t; ++i) {
        opts.corrupt.push_back(static_cast<PartyId>(n - 1 - i));
      }
      opts.schedule.assign(opts.config.iterations(), 1);
      auto run = harness::run_paths_finder(
          tree, n, t, inputs,
          std::make_unique<realaa::SplitAdversary>(opts));
      const auto paths = run.honest_paths();
      std::set<std::size_t> lengths;
      std::set<VertexId> tips;
      for (const auto& p : paths) {
        lengths.insert(p.size());
        tips.insert(p.back());
      }
      if (tips.size() == 1) {
        ++identical;
      } else if (tips.size() == 2 && lengths.size() == 2) {
        ++splits;
      } else {
        ++violations;
      }
      // Double-check Lemma 4 property 1.
      std::vector<VertexId> honest_inputs;
      for (PartyId p = 0; p < n; ++p) {
        if (std::find(run.corrupt.begin(), run.corrupt.end(), p) ==
            run.corrupt.end()) {
          honest_inputs.push_back(inputs[p]);
        }
      }
      for (const auto& p : paths) {
        const bool hits = std::any_of(
            p.begin(), p.end(),
            [&](VertexId v) { return in_hull(tree, honest_inputs, v); });
        if (!hits) ++violations;
      }
    }
    table.row({std::to_string(size), std::to_string(runs),
               std::to_string(identical), std::to_string(splits),
               std::to_string(violations)});
  }
  std::cout << render_for_output(table)
            << "(violations must be 0; splits demonstrate the Figure 5 "
               "scenario exists)\n";
}

}  // namespace

int main() {
  table_e5a();
  table_e5b();
  return 0;
}
