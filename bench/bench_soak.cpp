// E9 (beyond the paper's tables) — reliability soak: hundreds of randomized
// adversarial TreeAA executions, reporting violations of each AA property.
//
// Every cell sweeps random trees, random inputs, random corruption sets and
// a randomly chosen adversary strategy (silent / crash / fuzz / replay /
// split at either phase). The claim under test is binary: the counts in the
// violation columns are zero. This is the evaluation a systems venue would
// ask for that the brief announcement could not include.
//
// Seeding is sweep-style: every (family, trial) cell draws its Rng as
// Rng(kSoakSeed).fork(cell), so a cell's execution is independent of how
// many cells ran before it — shrinking the sweep with --runs N keeps the
// surviving cells bit-identical. `--threads K` runs the synchronous engine
// on K lanes (the async soak is untouched: its model has no lock-step
// phases to fan out); violation counts and metrics are byte-identical for
// every K, and the value is echoed in the report's "params" object.
// `--metrics <file|->` (or TREEAA_METRICS) additionally emits one
// obs::RunReport per synchronous TreeAA run as a "treeaa.bench_report/1"
// document via the shared BenchReporter. Unknown flags are an error (exit
// 2), not silently ignored.
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "obs/bench_report.h"
#include "common/table.h"
#include "core/api.h"
#include "harness/runner.h"
#include "realaa/adversaries.h"
#include "sim/strategies.h"
#include "trees/generators.h"

namespace {

using namespace treeaa;

std::unique_ptr<sim::Adversary> random_adversary(
    const LabeledTree& tree, std::size_t n, std::size_t t, Rng& rng,
    std::uint64_t seed) {
  const auto victims = sim::random_parties(n, t, rng);
  switch (rng.index(6)) {
    case 0:
      return std::make_unique<sim::SilentAdversary>(victims);
    case 1: {
      std::vector<sim::CrashAdversary::Crash> crashes;
      for (const PartyId v : victims) {
        crashes.push_back(
            {v, static_cast<Round>(1 + rng.index(12)), rng.unit()});
      }
      return std::make_unique<sim::CrashAdversary>(std::move(crashes));
    }
    case 2:
      return std::make_unique<sim::FuzzAdversary>(victims, seed, 24, 48);
    case 3:
      return std::make_unique<sim::ReplayAdversary>(victims, seed, 24);
    case 4: {
      realaa::SplitAdversary::Options opts;
      opts.config = core::paths_finder_config(tree, n, t, {});
      opts.corrupt = victims;
      return std::make_unique<realaa::SplitAdversary>(std::move(opts));
    }
    default: {
      realaa::SplitAdversary::Options opts;
      opts.config = core::projection_config(tree, n, t, {});
      opts.corrupt = victims;
      opts.start_round = static_cast<Round>(
          core::paths_finder_config(tree, n, t, {}).rounds() + 1);
      return std::make_unique<realaa::SplitAdversary>(std::move(opts));
    }
  }
}

constexpr std::uint64_t kSoakSeed = 424242;

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("soak", argc, argv);
  std::size_t runs_per_family = 250;
  std::size_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value after " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--runs") {
      runs_per_family = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--threads") {
      threads = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--metrics") {
      next();  // consumed by the BenchReporter above
    } else {
      std::cerr << "unknown option '" << arg
                << "' (bench_soak takes --runs N, --threads K, "
                   "--metrics <file|->)\n";
      return 2;
    }
  }
  if (runs_per_family == 0) {
    std::cerr << "--runs must be positive\n";
    return 2;
  }
  reporter.add_param("threads", threads);

  std::cout << "=== E9: randomized adversarial soak (TreeAA) ===\n";
  Table table({"family", "runs", "validity violations",
               "1-agreement violations", "termination failures",
               "max rounds"});
  std::uint64_t block = 0;
  for (const TreeFamily family : all_tree_families()) {
    std::size_t validity = 0, agreement = 0, termination = 0;
    Round max_rounds = 0;
    ++block;
    for (std::size_t trial = 0; trial < runs_per_family; ++trial) {
      // Each cell's stream depends only on (kSoakSeed, block, trial), never
      // on the number or outcome of earlier cells — so --runs shrinks the
      // sweep without perturbing the surviving cells.
      Rng rng = Rng(kSoakSeed).fork((block << 32) | trial);
      const auto tree = make_family_tree(family, 5 + rng.index(150), rng);
      const std::size_t n = 4 + rng.index(15);
      const std::size_t t = (n - 1) / 3;
      const auto inputs = harness::random_vertex_inputs(tree, n, rng);
      auto adversary = random_adversary(tree, n, t, rng, rng.next());
      try {
        const auto run = core::run_tree_aa(
            tree, inputs, t, {}, std::move(adversary),
            reporter.next_run(std::string("e9 ") + tree_family_name(family) +
                              " trial=" + std::to_string(trial)),
            sim::EngineOptions{threads});
        max_rounds = std::max(max_rounds, run.rounds);
        std::vector<VertexId> honest_inputs;
        for (PartyId p = 0; p < n; ++p) {
          if (run.outputs[p].has_value()) honest_inputs.push_back(inputs[p]);
        }
        const auto check = core::check_agreement(tree, honest_inputs,
                                                 run.honest_outputs());
        if (!check.valid) ++validity;
        if (!check.one_agreement) ++agreement;
      } catch (const std::exception& e) {
        ++termination;
        std::cout << "!! exception: " << e.what() << "\n";
      }
    }
    table.row({tree_family_name(family), std::to_string(runs_per_family),
               std::to_string(validity), std::to_string(agreement),
               std::to_string(termination), std::to_string(max_rounds)});
  }
  std::cout << render_for_output(table)
            << "(every violation column must read 0)\n\n";

  // Async soak: the NR baseline in its native model under hostile
  // scheduling with silent Byzantine parties.
  std::cout << "=== E9b: randomized soak (async NR baseline) ===\n";
  Table async_table({"scheduler", "runs", "validity violations",
                     "1-agreement violations", "liveness failures"});
  for (const auto sched : {async::SchedulerKind::kRandom,
                           async::SchedulerKind::kLifo,
                           async::SchedulerKind::kFifo}) {
    std::size_t validity = 0, agreement = 0, liveness = 0;
    const std::size_t runs = std::max<std::size_t>(1, runs_per_family / 3);
    ++block;
    for (std::size_t trial = 0; trial < runs; ++trial) {
      Rng rng = Rng(kSoakSeed).fork((block << 32) | trial);
      const auto tree = make_random_tree(4 + rng.index(60), rng);
      const std::size_t n = 4 + rng.index(9);
      const std::size_t t = (n - 1) / 3;
      const auto inputs = harness::random_vertex_inputs(tree, n, rng);
      const auto corrupt = sim::random_parties(n, t, rng);
      try {
        const auto run = harness::run_async_tree_aa(
            tree, n, t, inputs, {corrupt, sched, rng.next()});
        std::vector<VertexId> honest_inputs;
        for (PartyId p = 0; p < n; ++p) {
          if (run.outputs[p].has_value()) honest_inputs.push_back(inputs[p]);
        }
        const auto check = core::check_agreement(tree, honest_inputs,
                                                 run.honest_outputs());
        if (!check.valid) ++validity;
        if (!check.one_agreement) ++agreement;
      } catch (const std::exception&) {
        ++liveness;
      }
    }
    const char* name = sched == async::SchedulerKind::kRandom ? "random"
                       : sched == async::SchedulerKind::kLifo ? "lifo"
                                                              : "fifo";
    async_table.row({name, std::to_string(runs), std::to_string(validity),
                     std::to_string(agreement), std::to_string(liveness)});
  }
  std::cout << render_for_output(async_table)
            << "(liveness failures would mean the witness machinery "
               "deadlocked -- must be 0)\n";
  return reporter.flush() ? 0 : 1;
}
