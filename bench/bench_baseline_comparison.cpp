// E7 — TreeAA vs the prior state of the art (paper §1 / §8: TreeAA's
// O(log|V|/loglog|V|) rounds against Nowak–Rybicki's O(log D(T)), and the
// RealAA engine against the classic DLPSW iteration on R).
//
// Expected shape: on deep trees (paths, caterpillars, spiders — D ~ |V|)
// TreeAA wins by a growing factor; on shallow trees (stars, D = 2) the
// baseline's log D beats TreeAA's log|V|/loglog|V|, which is exactly the
// regime the paper's optimality condition D(T) ∈ |V|^Theta(1) excludes.
// The crossover sits where log D ~ log|V|/loglog|V|.
#include <iostream>

#include "async/tree_aa.h"
#include "baselines/iterated_real_aa.h"
#include "baselines/iterated_tree_aa.h"
#include "common/table.h"
#include "core/api.h"
#include "harness/runner.h"
#include "realaa/rounds.h"
#include "trees/generators.h"

namespace {

using namespace treeaa;

void real_engines_table() {
  std::cout << "=== E7a: RealAA vs classic iterated AA on R (n = 13, t = 4) "
               "===\n";
  Table table({"D", "RealAA rounds", "DLPSW rounds", "speedup"});
  const std::size_t n = 13, t = 4;
  for (double D : {16.0, 256.0, 4096.0, 65536.0, 1e6, 1e9}) {
    realaa::Config fast;
    fast.n = n;
    fast.t = t;
    fast.eps = 1.0;
    fast.known_range = D;
    baselines::IteratedRealConfig slow{n, t, 1.0, D};
    const auto inputs = harness::spread_real_inputs(n, 0.0, D);
    const auto fast_run = harness::run_real_aa(fast, inputs);
    const auto slow_run = harness::run_iterated_real_aa(slow, inputs);
    table.row({fmt_double(D), std::to_string(fast_run.rounds),
               std::to_string(slow_run.rounds),
               fmt_ratio(static_cast<double>(slow_run.rounds) /
                         static_cast<double>(fast_run.rounds))});
  }
  std::cout << render_for_output(table) << "\n";
}

void tree_protocols_table() {
  std::cout << "=== E7b: TreeAA vs NR-style baseline across tree families "
               "(n = 7, t = 2, measured) ===\n";
  Table table({"family", "|V|", "D(T)", "TreeAA", "NR baseline", "winner"});
  Rng rng(7);
  const std::size_t n = 7, t = 2;
  for (const TreeFamily family : all_tree_families()) {
    for (std::size_t size : {50u, 500u, 5000u}) {
      const auto tree = make_family_tree(family, size, rng);
      const auto inputs = harness::spread_vertex_inputs(tree, n);
      const auto fast = core::run_tree_aa(tree, inputs, t);
      const auto slow = harness::run_iterated_tree_aa(tree, n, t, inputs);
      const auto ok_fast =
          core::check_agreement(tree, inputs, fast.honest_outputs()).ok();
      std::vector<VertexId> slow_outputs = slow.honest_outputs();
      const auto ok_slow =
          core::check_agreement(tree, inputs, slow_outputs).ok();
      std::string winner = fast.rounds < slow.rounds ? "TreeAA"
                           : fast.rounds > slow.rounds ? "baseline"
                                                       : "tie";
      if (!ok_fast || !ok_slow) winner += " (AA VIOLATION!)";
      table.row({tree_family_name(family), std::to_string(tree.n()),
                 std::to_string(tree.diameter()),
                 std::to_string(fast.rounds), std::to_string(slow.rounds),
                 winner});
    }
  }
  std::cout << render_for_output(table)
            << "(TreeAA wins whenever D is polynomial in |V|; the star rows "
               "are the paper's excluded shallow regime)\n\n";
}

void crossover_table() {
  std::cout << "=== E7c: crossover on caterpillars of varying depth ===\n";
  // Fix |V| ~ 3000 and vary the diameter by trading spine length against
  // leg count: the baseline depends on D only, TreeAA on |V| only.
  Table table({"spine", "legs/vertex", "|V|", "D(T)", "TreeAA",
               "NR baseline"});
  const std::size_t n = 7, t = 2;
  for (std::size_t spine : {4u, 12u, 48u, 180u, 750u, 3000u}) {
    const std::size_t legs = 3000 / spine;
    const auto tree = make_caterpillar(spine, legs);
    const std::size_t fast = core::tree_aa_rounds(tree, n, t);
    baselines::IteratedTreeConfig cfg{n, t};
    table.row({std::to_string(spine), std::to_string(legs),
               std::to_string(tree.n()), std::to_string(tree.diameter()),
               std::to_string(fast), std::to_string(cfg.rounds(tree))});
  }
  std::cout << render_for_output(table)
            << "(the crossover row is where log D(T) overtakes "
               "log|V|/loglog|V|)\n";
}

void async_baseline_table() {
  // The NR baseline in its native asynchronous model (RBC + witness
  // technique). Rounds are undefined there; iterations and message counts
  // are the comparable currencies. The iteration count equals the
  // synchronous adaptation's (both halve the hull diameter per iteration),
  // but each async iteration costs Theta(n^2) RBC messages per broadcast
  // plus reports — visible in the per-iteration message column.
  std::cout << "=== E7d: the async NR baseline (native model, random "
               "scheduler, t silent Byzantine) ===\n";
  Table table({"|V|", "D(T)", "iterations", "deliveries", "messages",
               "msgs/iter", "AA ok?"});
  Rng rng(17);
  const std::size_t n = 7, t = 2;
  for (std::size_t size : {50u, 200u, 800u}) {
    const auto tree = make_random_chainy_tree(size, rng, 0.8);
    const auto inputs = harness::spread_vertex_inputs(tree, n);
    const auto run = harness::run_async_tree_aa(
        tree, n, t, inputs, {5, 6}, async::SchedulerKind::kRandom, size);
    std::vector<VertexId> honest(inputs.begin(), inputs.begin() + 5);
    const bool ok =
        core::check_agreement(tree, honest, run.honest_outputs()).ok();
    const std::size_t iters = async::AsyncTreeConfig{n, t}.iterations(tree);
    table.row({std::to_string(tree.n()), std::to_string(tree.diameter()),
               std::to_string(iters), std::to_string(run.deliveries),
               std::to_string(run.messages),
               std::to_string(run.messages / std::max<std::size_t>(iters, 1)),
               ok ? "yes" : "NO"});
  }
  std::cout << render_for_output(table);
}

}  // namespace

int main() {
  real_engines_table();
  tree_protocols_table();
  crossover_table();
  async_baseline_table();
  return 0;
}
