// E7 — TreeAA vs the prior state of the art (paper §1 / §8: TreeAA's
// O(log|V|/loglog|V|) rounds against Nowak–Rybicki's O(log D(T)), and the
// RealAA engine against the classic DLPSW iteration on R).
//
// Expected shape: on deep trees (paths, caterpillars, spiders — D ~ |V|)
// TreeAA wins by a growing factor; on shallow trees (stars, D = 2) the
// baseline's log D beats TreeAA's log|V|/loglog|V|, which is exactly the
// regime the paper's optimality condition D(T) ∈ |V|^Theta(1) excludes.
// The crossover sits where log D ~ log|V|/loglog|V|.
#include <iostream>

#include "async/tree_aa.h"
#include "baselines/iterated_real_aa.h"
#include "baselines/iterated_tree_aa.h"
#include "common/table.h"
#include "core/api.h"
#include "exp/spec.h"
#include "exp/sweep.h"
#include "harness/runner.h"
#include "realaa/rounds.h"
#include "trees/generators.h"

namespace {

using namespace treeaa;

// E7a and E7b are phrased as sweep scenarios and executed on the exp engine
// (src/exp/); the tables below just pair up rows of the flat cell list,
// whose order is the documented axis order of exp::expand. The same grids
// are regenerable without rebuilding via examples/sweeps/ + treeaa_sweep.

void real_engines_table() {
  std::cout << "=== E7a: RealAA vs classic iterated AA on R (n = 13, t = 4) "
               "===\n";
  Table table({"D", "RealAA rounds", "DLPSW rounds", "speedup"});
  const std::vector<double> ranges = {16.0, 256.0, 4096.0, 65536.0, 1e6, 1e9};

  exp::SweepSpec spec;
  spec.name = "bench-e7a";
  exp::Scenario s;
  s.protocols = {exp::Protocol::kRealAA, exp::Protocol::kIteratedRealAA};
  s.ranges = ranges;
  s.n_values = {13};
  s.t_values = {4};
  spec.scenarios.push_back(s);

  const auto result = exp::run_sweep(spec);
  // Protocol is the outermost axis: RealAA cells first, then the baseline's.
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    const auto& fast = result.cells[i];
    const auto& slow = result.cells[ranges.size() + i];
    table.row({fmt_double(ranges[i]), std::to_string(fast.rounds),
               std::to_string(slow.rounds),
               fmt_ratio(static_cast<double>(slow.rounds) /
                         static_cast<double>(fast.rounds))});
  }
  std::cout << render_for_output(table) << "\n";
}

void tree_protocols_table() {
  std::cout << "=== E7b: TreeAA vs NR-style baseline across tree families "
               "(n = 7, t = 2, measured) ===\n";
  Table table({"family", "|V|", "D(T)", "TreeAA", "NR baseline", "winner"});
  const std::vector<std::size_t> sizes = {50, 500, 5000};

  exp::SweepSpec spec;
  spec.name = "bench-e7b";
  exp::Scenario s;
  s.protocols = {exp::Protocol::kTreeAA, exp::Protocol::kIteratedTreeAA};
  exp::TreeSpec tree;
  for (const TreeFamily f : all_tree_families()) {
    tree.families.push_back(tree_family_name(f));
  }
  tree.sizes = sizes;
  tree.tree_seed = 7;  // both protocols must see the same tree instance
  s.tree = tree;
  s.n_values = {7};
  s.t_values = {2};
  spec.scenarios.push_back(s);

  const auto result = exp::run_sweep(spec);
  const std::size_t block = tree.families.size() * sizes.size();
  for (std::size_t f = 0; f < tree.families.size(); ++f) {
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto& fast = result.cells[f * sizes.size() + i];
      const auto& slow = result.cells[block + f * sizes.size() + i];
      std::string winner = fast.rounds < slow.rounds ? "TreeAA"
                           : fast.rounds > slow.rounds ? "baseline"
                                                       : "tie";
      if (!fast.aa_ok() || !slow.aa_ok()) winner += " (AA VIOLATION!)";
      table.row({tree.families[f], std::to_string(fast.tree_n),
                 std::to_string(fast.tree_diameter),
                 std::to_string(fast.rounds), std::to_string(slow.rounds),
                 winner});
    }
  }
  std::cout << render_for_output(table)
            << "(TreeAA wins whenever D is polynomial in |V|; the star rows "
               "are the paper's excluded shallow regime)\n\n";
}

void crossover_table() {
  std::cout << "=== E7c: crossover on caterpillars of varying depth ===\n";
  // Fix |V| ~ 3000 and vary the diameter by trading spine length against
  // leg count: the baseline depends on D only, TreeAA on |V| only.
  Table table({"spine", "legs/vertex", "|V|", "D(T)", "TreeAA",
               "NR baseline"});
  const std::size_t n = 7, t = 2;
  for (std::size_t spine : {4u, 12u, 48u, 180u, 750u, 3000u}) {
    const std::size_t legs = 3000 / spine;
    const auto tree = make_caterpillar(spine, legs);
    const std::size_t fast = core::tree_aa_rounds(tree, n, t);
    baselines::IteratedTreeConfig cfg{n, t};
    table.row({std::to_string(spine), std::to_string(legs),
               std::to_string(tree.n()), std::to_string(tree.diameter()),
               std::to_string(fast), std::to_string(cfg.rounds(tree))});
  }
  std::cout << render_for_output(table)
            << "(the crossover row is where log D(T) overtakes "
               "log|V|/loglog|V|)\n";
}

void async_baseline_table() {
  // The NR baseline in its native asynchronous model (RBC + witness
  // technique). Rounds are undefined there; iterations and message counts
  // are the comparable currencies. The iteration count equals the
  // synchronous adaptation's (both halve the hull diameter per iteration),
  // but each async iteration costs Theta(n^2) RBC messages per broadcast
  // plus reports — visible in the per-iteration message column.
  std::cout << "=== E7d: the async NR baseline (native model, random "
               "scheduler, t silent Byzantine) ===\n";
  Table table({"|V|", "D(T)", "iterations", "deliveries", "messages",
               "msgs/iter", "AA ok?"});
  Rng rng(17);
  const std::size_t n = 7, t = 2;
  for (std::size_t size : {50u, 200u, 800u}) {
    const auto tree = make_random_chainy_tree(size, rng, 0.8);
    const auto inputs = harness::spread_vertex_inputs(tree, n);
    const auto run = harness::run_async_tree_aa(
        tree, n, t, inputs, {{5, 6}, async::SchedulerKind::kRandom, size});
    std::vector<VertexId> honest(inputs.begin(), inputs.begin() + 5);
    const bool ok =
        core::check_agreement(tree, honest, run.honest_outputs()).ok();
    const std::size_t iters = async::AsyncTreeConfig{n, t}.iterations(tree);
    table.row({std::to_string(tree.n()), std::to_string(tree.diameter()),
               std::to_string(iters), std::to_string(run.deliveries),
               std::to_string(run.messages),
               std::to_string(run.messages / std::max<std::size_t>(iters, 1)),
               ok ? "yes" : "NO"});
  }
  std::cout << render_for_output(table);
}

}  // namespace

int main() {
  real_engines_table();
  tree_protocols_table();
  crossover_table();
  async_baseline_table();
  return 0;
}
