// E10 (engineering) — simulator throughput: wall-clock cost of full
// protocol executions. Not a paper claim; included so users can size
// experiments (how big an n / |V| sweep fits in a CI run).
#include <benchmark/benchmark.h>

#include "core/api.h"
#include "gradecast/gradecast.h"
#include "harness/runner.h"
#include "sim/engine.h"
#include "trees/generators.h"

namespace {

using namespace treeaa;

void BM_GradecastBatch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t t = (n - 1) / 3;
  for (auto _ : state) {
    sim::Engine engine(n, std::max<std::size_t>(t, 1));
    // Host a single batch per party.
    class Host final : public sim::Process {
     public:
      Host(PartyId self, std::size_t n_, std::size_t t_)
          : batch_(self, n_, t_, Bytes{static_cast<std::uint8_t>(self)}) {}
      void on_round_begin(Round r, sim::Mailer& out) override {
        batch_.on_step_begin(r - 1, out);
      }
      void on_round_end(Round r,
                        std::span<const sim::Envelope> inbox) override {
        batch_.on_step_end(r - 1, inbox);
      }
      gradecast::BatchGradecast batch_;
    };
    for (PartyId p = 0; p < n; ++p) {
      engine.set_process(p, std::make_unique<Host>(p, n, t));
    }
    engine.run(gradecast::kRounds);
    benchmark::DoNotOptimize(engine.stats().total_messages());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_GradecastBatch)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_RealAAFullRun(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t t = (n - 1) / 3;
  realaa::Config cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.eps = 1.0;
  cfg.known_range = 1e4;
  const auto inputs = harness::spread_real_inputs(n, 0.0, 1e4);
  for (auto _ : state) {
    const auto run = harness::run_real_aa(cfg, inputs);
    benchmark::DoNotOptimize(run.outputs[0]);
  }
}
BENCHMARK(BM_RealAAFullRun)->Arg(4)->Arg(16)->Arg(64);

void BM_TreeAAFullRun(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  Rng rng(0xBEEF + size);
  const auto tree = make_random_tree(size, rng);
  const std::size_t n = 7, t = 2;
  const auto inputs = harness::spread_vertex_inputs(tree, n);
  for (auto _ : state) {
    const auto run = core::run_tree_aa(tree, inputs, t);
    benchmark::DoNotOptimize(run.rounds);
  }
  state.SetLabel("n=7");
}
BENCHMARK(BM_TreeAAFullRun)->Arg(100)->Arg(1000)->Arg(10000);

void BM_AsyncTreeAAFullRun(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  Rng rng(0xF00D + size);
  const auto tree = make_random_tree(size, rng);
  const std::size_t n = 7, t = 2;
  const auto inputs = harness::spread_vertex_inputs(tree, n);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto run = harness::run_async_tree_aa(
        tree, n, t, inputs, {}, async::SchedulerKind::kRandom, seed++);
    benchmark::DoNotOptimize(run.deliveries);
  }
}
BENCHMARK(BM_AsyncTreeAAFullRun)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
