// E10 (engineering) — simulator throughput: wall-clock cost of full
// protocol executions. Not a paper claim; included so users can size
// experiments (how big an n / |V| sweep fits in a CI run).
//
// Two modes:
//
//   bench_sim_throughput [gbench flags]
//     The historical google-benchmark sweep over n / |V|.
//
//   bench_sim_throughput --pinned [--out <file|->]
//                        [--check-against <baseline.json>]
//                        [--max-regression <pct>] [--reps-scale <x>]
//                        [--threads <k>] [--pin-threads]
//     The perf-regression suite: nine pinned scenarios (one per hot
//     subsystem — gradecast codec+counting, the slot codec in isolation
//     (gradecast_codec_n64), RealAA iteration loop, TreeAA end-to-end on
//     1000- and 4096-vertex trees, BlockAA on a 600-vertex clique chain,
//     plus tree_aa_1000_t8, tree_aa_4096_t8 and realaa_n64_t8 pinned at
//     8 engine lanes) run a fixed number of repetitions and report
//     messages/second as a "treeaa.perf_report/1" JSON document (--out,
//     falling back to TREEAA_METRICS, "-" = stdout); each scenario
//     records its engine lane count (`threads`), the host's logical CPU
//     count (`host_cpus`) and the effective worker count (`workers`).
//     --threads sets the lane count of the base scenarios (default 1, the
//     serial baseline); the *_t8 scenarios always pin 8 lanes, and
//     message counts never depend on the lane count. --pin-threads pins
//     pool workers to CPUs (perf::WorkerPool::set_pin_threads). With
//     --check-against the measured throughput is gated against a
//     checked-in baseline (bench/perf_baseline.json): any scenario more
//     than --max-regression percent (default 25) below its baseline fails
//     the run with exit code 1. docs/PERF.md describes the schema and how
//     to refresh the baseline.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common_flags.h"
#include "core/api.h"
#include "exp/json_value.h"
#include "gradecast/gradecast.h"
#include "gradecast/wire.h"
#include "graphs/block_aa.h"
#include "graphs/block_index.h"
#include "graphs/generators.h"
#include "harness/runner.h"
#include "obs/json.h"
#include "obs/sink.h"
#include "perf/parallel.h"
#include "sim/engine.h"
#include "trees/generators.h"

namespace {

using namespace treeaa;

// --- Shared gradecast host ---------------------------------------------------

/// Hosts a single BatchGradecast per party (every party leads with a
/// one-byte value).
class GradecastHost final : public sim::Process {
 public:
  GradecastHost(PartyId self, std::size_t n, std::size_t t)
      : batch_(self, n, t, Bytes{static_cast<std::uint8_t>(self)}) {}
  void on_round_begin(Round r, sim::Mailer& out) override {
    batch_.on_step_begin(r - 1, out);
  }
  void on_round_end(Round r, std::span<const sim::Envelope> inbox) override {
    batch_.on_step_end(r - 1, inbox);
  }

 private:
  gradecast::BatchGradecast batch_;
};

std::uint64_t gradecast_once(std::size_t n, std::size_t t,
                             std::size_t threads = 1) {
  sim::Engine engine(n, std::max<std::size_t>(t, 1),
                     sim::EngineOptions{threads});
  for (PartyId p = 0; p < n; ++p) {
    engine.set_process(p, std::make_unique<GradecastHost>(p, n, t));
  }
  engine.run(gradecast::kRounds);
  return engine.stats().total_messages();
}

// --- google-benchmark sweep (the historical mode) ----------------------------

void BM_GradecastBatch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t t = (n - 1) / 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gradecast_once(n, t));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_GradecastBatch)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_RealAAFullRun(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t t = (n - 1) / 3;
  realaa::Config cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.eps = 1.0;
  cfg.known_range = 1e4;
  const auto inputs = harness::spread_real_inputs(n, 0.0, 1e4);
  for (auto _ : state) {
    const auto run = harness::run_real_aa(cfg, inputs);
    benchmark::DoNotOptimize(run.outputs[0]);
  }
}
BENCHMARK(BM_RealAAFullRun)->Arg(4)->Arg(16)->Arg(64);

void BM_TreeAAFullRun(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  Rng rng(0xBEEF + size);
  const auto tree = make_random_tree(size, rng);
  const std::size_t n = 7, t = 2;
  const auto inputs = harness::spread_vertex_inputs(tree, n);
  for (auto _ : state) {
    const auto run = core::run_tree_aa(tree, inputs, t);
    benchmark::DoNotOptimize(run.rounds);
  }
  state.SetLabel("n=7");
}
BENCHMARK(BM_TreeAAFullRun)->Arg(100)->Arg(1000)->Arg(10000);

void BM_AsyncTreeAAFullRun(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  Rng rng(0xF00D + size);
  const auto tree = make_random_tree(size, rng);
  const std::size_t n = 7, t = 2;
  const auto inputs = harness::spread_vertex_inputs(tree, n);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto run = harness::run_async_tree_aa(
        tree, n, t, inputs, {{}, async::SchedulerKind::kRandom, seed++});
    benchmark::DoNotOptimize(run.deliveries);
  }
}
BENCHMARK(BM_AsyncTreeAAFullRun)->Arg(100)->Arg(1000);

// --- Pinned perf-regression suite --------------------------------------------

struct PinnedResult {
  std::string name;
  std::size_t reps = 0;
  std::size_t threads = 1;      // engine lanes the scenario pinned
  std::size_t host_cpus = 0;    // std::thread::hardware_concurrency()
  std::size_t workers = 1;      // effective WorkerPool workers for `threads`
  std::uint64_t messages = 0;   // total over all reps
  std::uint64_t wall_ns = 0;    // total over all reps
  double messages_per_sec = 0.0;
};

/// One fixed scenario: run() executes one full protocol execution and
/// returns the number of simulator messages it moved. `threads` is the
/// engine lane count the scenario runs with; it changes only the wall
/// clock, never the message counts (the engine's determinism contract).
template <typename Run>
PinnedResult run_pinned_scenario(const std::string& name, std::size_t reps,
                                 double reps_scale, std::size_t threads,
                                 Run&& run) {
  const auto scaled = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(reps) * reps_scale));
  // A few unmeasured executions to fault in code and warm the allocator,
  // mirroring google-benchmark's warmup.
  for (std::size_t i = 0; i < 3; ++i) (void)run();
  PinnedResult result;
  result.name = name;
  result.reps = scaled;
  result.threads = threads;
  // Recorded so a checked-in report says what hardware produced it: the
  // host's logical CPU count and the worker count the pool would actually
  // use for this lane count (respects TREEAA_FORCE_WORKERS).
  result.host_cpus = std::thread::hardware_concurrency();
  result.workers = perf::WorkerPool::default_workers(threads);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < scaled; ++i) result.messages += run();
  const auto end = std::chrono::steady_clock::now();
  result.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
  result.messages_per_sec = result.wall_ns == 0
                                ? 0.0
                                : static_cast<double>(result.messages) * 1e9 /
                                      static_cast<double>(result.wall_ns);
  return result;
}

/// The pinned scenarios. Fixed inputs and seeds: the message counts are
/// deterministic, only the wall clock varies between runs. `threads` sets
/// the engine lane count for the three base scenarios (the CLI default is
/// 1, the serial baseline); the *_t8 scenarios pin 8 lanes regardless, so
/// one report always carries a serial/parallel pair to compare.
std::vector<PinnedResult> run_pinned_suite(double reps_scale,
                                           std::size_t threads) {
  std::vector<PinnedResult> results;

  // Gradecast batch, n=32: the codec + counting hot path.
  results.push_back(
      run_pinned_scenario("gradecast_n32", 60, reps_scale, threads,
                          [&] { return gradecast_once(32, 10, threads); }));

  // RealAA full run, n=16: the iteration loop over gradecast.
  {
    realaa::Config cfg;
    cfg.n = 16;
    cfg.t = 5;
    cfg.eps = 1.0;
    cfg.known_range = 1e4;
    const auto inputs = harness::spread_real_inputs(16, 0.0, 1e4);
    results.push_back(
        run_pinned_scenario("realaa_n16", 40, reps_scale, threads, [&] {
          const auto run =
              harness::run_real_aa(cfg, inputs, nullptr, nullptr, threads);
          return run.traffic.total_messages();
        }));
  }

  // TreeAA end-to-end on a 1000-vertex random tree: tree queries +
  // PathsFinder + projection.
  {
    Rng rng(0xBEEF + 1000);
    const auto tree = make_random_tree(1000, rng);
    const auto inputs = harness::spread_vertex_inputs(tree, 7);
    results.push_back(
        run_pinned_scenario("tree_aa_1000", 120, reps_scale, threads, [&] {
          const auto run = core::run_tree_aa(tree, inputs, 2, {}, nullptr,
                                             nullptr,
                                             sim::EngineOptions{threads});
          return run.traffic.total_messages();
        }));

    // The same TreeAA instance pinned at 8 lanes: the broadcast fan-out /
    // parallel-phase scenario. Message counts must equal tree_aa_1000's.
    results.push_back(
        run_pinned_scenario("tree_aa_1000_t8", 120, reps_scale, 8, [&] {
          const auto run = core::run_tree_aa(tree, inputs, 2, {}, nullptr,
                                             nullptr, sim::EngineOptions{8});
          return run.traffic.total_messages();
        }));
  }

  // TreeAA on a 4096-vertex random tree, serial and at 8 lanes: the
  // multi-core scaling pair — large enough per-round work for the SPSC
  // lane handoff and pinning to show, and the byte-identity pair the CI
  // perf smoke compares across thread counts.
  {
    Rng rng(0xBEEF + 4096);
    const auto tree = make_random_tree(4096, rng);
    const auto inputs = harness::spread_vertex_inputs(tree, 7);
    results.push_back(
        run_pinned_scenario("tree_aa_4096", 30, reps_scale, threads, [&] {
          const auto run = core::run_tree_aa(tree, inputs, 2, {}, nullptr,
                                             nullptr,
                                             sim::EngineOptions{threads});
          return run.traffic.total_messages();
        }));
    results.push_back(
        run_pinned_scenario("tree_aa_4096_t8", 30, reps_scale, 8, [&] {
          const auto run = core::run_tree_aa(tree, inputs, 2, {}, nullptr,
                                             nullptr, sim::EngineOptions{8});
          return run.traffic.total_messages();
        }));
  }

  // The gradecast slot codec in isolation: the SIMD batched encoder and
  // the zero-copy view decoder round-tripping a 64-slot echo vector (half
  // the slots carry 24-byte values). One "message" = one encode + decode.
  {
    std::vector<gradecast::Slot> slots(64);
    Rng rng(0xC0DEC);
    for (std::size_t i = 0; i < slots.size(); i += 2) {
      Bytes value(24);
      for (auto& b : value) {
        b = static_cast<std::uint8_t>(rng.index(256));
      }
      slots[i] = std::move(value);
    }
    results.push_back(
        run_pinned_scenario("gradecast_codec_n64", 40, reps_scale, 1, [&] {
          std::uint64_t msgs = 0;
          std::vector<gradecast::SlotView> views(slots.size());
          for (std::size_t i = 0; i < 2000; ++i) {
            const Bytes msg =
                gradecast::encode_slots(gradecast::kTagEcho, slots);
            if (!gradecast::decode_slots_view(gradecast::kTagEcho, msg,
                                              views)) {
              std::cerr << "gradecast_codec_n64: round-trip failed\n";
              std::exit(2);
            }
            benchmark::DoNotOptimize(views.data());
            ++msgs;
          }
          return msgs;
        }));
  }

  // BlockAA end-to-end on a ~600-vertex clique chain: the block-graph
  // reduction (BlockIndex build amortized out, gate resolution + graph-
  // metric queries in the loop).
  {
    const auto g = graphs::make_clique_chain(600);
    const graphs::BlockIndex index(g);
    const auto [end_a, end_b] = index.diameter_endpoints();
    std::vector<VertexId> inputs;
    for (std::size_t p = 0; p < 7; ++p) {
      inputs.push_back(p % 2 == 0 ? end_a : end_b);
    }
    results.push_back(
        run_pinned_scenario("block_aa_600", 60, reps_scale, threads, [&] {
          const auto run =
              graphs::run_block_aa(index, inputs, 2, {}, nullptr, nullptr,
                                   sim::EngineOptions{threads});
          return run.traffic.total_messages();
        }));
  }

  // RealAA at n=64 pinned at 8 lanes: enough parties per round for the
  // chunked fan-out to matter on multicore hosts.
  {
    realaa::Config cfg;
    cfg.n = 64;
    cfg.t = 21;
    cfg.eps = 1.0;
    cfg.known_range = 1e4;
    const auto inputs = harness::spread_real_inputs(64, 0.0, 1e4);
    results.push_back(
        run_pinned_scenario("realaa_n64_t8", 10, reps_scale, 8, [&] {
          const auto run =
              harness::run_real_aa(cfg, inputs, nullptr, nullptr, 8);
          return run.traffic.total_messages();
        }));
  }

  return results;
}

std::string perf_report_json(const std::vector<PinnedResult>& results) {
  std::string out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("schema");
  w.value(std::string_view("treeaa.perf_report/1"));
  w.key("bench");
  w.value(std::string_view("sim_throughput_pinned"));
  w.key("scenarios");
  w.begin_array();
  for (const PinnedResult& r : results) {
    w.begin_object();
    w.key("name");
    w.value(std::string_view(r.name));
    w.key("reps");
    w.value(static_cast<std::uint64_t>(r.reps));
    w.key("threads");
    w.value(static_cast<std::uint64_t>(r.threads));
    w.key("host_cpus");
    w.value(static_cast<std::uint64_t>(r.host_cpus));
    w.key("workers");
    w.value(static_cast<std::uint64_t>(r.workers));
    w.key("messages");
    w.value(r.messages);
    w.key("wall_ns");
    w.value(r.wall_ns);
    w.key("messages_per_sec");
    w.value(r.messages_per_sec);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out += '\n';
  return out;
}

/// Gates `results` against a perf_report/1 baseline document. Returns the
/// number of scenarios regressing more than `max_regression_pct`; unknown
/// or missing scenarios are reported but never fail the gate (so adding a
/// scenario does not require a lockstep baseline update).
int check_against_baseline(const std::vector<PinnedResult>& results,
                           const std::string& baseline_path,
                           double max_regression_pct, std::ostream& human) {
  std::ifstream in(baseline_path);
  if (!in) {
    std::cerr << "perf gate: cannot open baseline '" << baseline_path << "'\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto doc = exp::JsonValue::parse(buffer.str());
  if (!doc.has_value() || !doc->is_object()) {
    std::cerr << "perf gate: malformed baseline '" << baseline_path << "'\n";
    return 1;
  }
  const exp::JsonValue* scenarios = doc->find("scenarios");
  if (scenarios == nullptr || !scenarios->is_array()) {
    std::cerr << "perf gate: baseline has no scenarios array\n";
    return 1;
  }

  int regressions = 0;
  for (const PinnedResult& r : results) {
    double baseline = 0.0;
    for (const exp::JsonValue& s : scenarios->items()) {
      const exp::JsonValue* name = s.find("name");
      const exp::JsonValue* rate = s.find("messages_per_sec");
      if (name != nullptr && name->is_string() && name->as_string() == r.name &&
          rate != nullptr && rate->is_number()) {
        baseline = rate->as_number();
      }
    }
    if (baseline <= 0.0) {
      std::cerr << "perf gate: no baseline for '" << r.name << "' (skipped)\n";
      continue;
    }
    const double floor = baseline * (1.0 - max_regression_pct / 100.0);
    const double delta_pct =
        (r.messages_per_sec / baseline - 1.0) * 100.0;
    human << "perf gate: " << r.name << " " << std::fixed
          << static_cast<std::uint64_t>(r.messages_per_sec)
          << " msgs/s vs baseline "
          << static_cast<std::uint64_t>(baseline) << " ("
          << (delta_pct >= 0 ? "+" : "") << delta_pct << "%)\n";
    if (r.messages_per_sec < floor) {
      std::cerr << "perf gate: FAIL " << r.name << " regressed more than "
                << max_regression_pct << "% (floor "
                << static_cast<std::uint64_t>(floor) << " msgs/s)\n";
      ++regressions;
    }
  }
  return regressions;
}

int run_pinned_mode(int argc, char** argv) {
  // Flag vocabulary from tools/common_flags: --threads plus the perf-gate
  // set (--out/--check-against/--max-regression/--reps-scale) and
  // --pin-threads. Error strings match the historical hand-rolled parser.
  const std::vector<std::string> args(argv + 1, argv + argc);
  tools::CommonFlagSet set;
  set.threads = true;
  set.bench_gate = true;
  set.pin_threads = true;
  tools::CommonFlags flags;
  const tools::UsageFn fail = [](const std::string& msg) {
    std::cerr << msg << "\n";
    std::exit(2);
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--pinned") continue;
    if (tools::parse_common_flag(args, i, set, flags, fail)) continue;
    std::cerr << "unknown --pinned option '" << args[i] << "'\n";
    return 2;
  }
  if (flags.pin_threads) perf::WorkerPool::set_pin_threads(true);
  std::string out_path = obs::resolve_metrics_path(std::move(flags.out_path));
  // With the report on stdout, human summaries move to stderr so the
  // JSON stays machine-parseable (same convention as treeaa_cli).
  std::ostream& human = out_path == "-" ? std::cerr : std::cout;

  const auto results = run_pinned_suite(flags.reps_scale, flags.threads);
  for (const PinnedResult& r : results) {
    human << r.name << ": " << r.messages << " msgs in " << r.reps
          << " reps, "
          << static_cast<std::uint64_t>(r.messages_per_sec)
          << " msgs/s\n";
  }
  if (!out_path.empty() && !obs::write_sink(out_path, perf_report_json(results))) {
    return 2;
  }
  if (!flags.check_against.empty()) {
    return check_against_baseline(results, flags.check_against,
                                  flags.max_regression_pct, human) > 0
               ? 1
               : 0;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--pinned") {
      return run_pinned_mode(argc, argv);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
