// E4 — ListConstruction and LCA machinery at scale (paper Lemma 2 and the
// Bender–Farach-Colton technique it builds on, reference [8]).
//
// Google-benchmark microbenchmarks: Euler-list construction is O(|V|), the
// sparse-table index answers LCA queries in O(1), and the binary-lifting
// LCA in O(log |V|). The absolute numbers are machine-dependent; the shape
// (linear build, flat O(1) query) is the claim.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/tree_aa.h"
#include "trees/euler.h"
#include "trees/generators.h"
#include "trees/lca.h"
#include "trees/paths.h"

namespace {

using namespace treeaa;

LabeledTree benchmark_tree(std::size_t n) {
  Rng rng(0xE0E0 + n);
  return make_random_chainy_tree(n, rng, 0.5);
}

void BM_EulerListConstruction(benchmark::State& state) {
  const auto tree = benchmark_tree(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    EulerList list(tree);
    benchmark::DoNotOptimize(list.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EulerListConstruction)->Range(1 << 10, 1 << 18);

void BM_SparseLcaBuild(benchmark::State& state) {
  const auto tree = benchmark_tree(static_cast<std::size_t>(state.range(0)));
  const EulerList list(tree);
  for (auto _ : state) {
    SparseLcaIndex idx(tree, list);
    benchmark::DoNotOptimize(idx.lca(0, 0));
  }
}
BENCHMARK(BM_SparseLcaBuild)->Range(1 << 10, 1 << 17);

void BM_SparseLcaQuery(benchmark::State& state) {
  const auto tree = benchmark_tree(static_cast<std::size_t>(state.range(0)));
  const EulerList list(tree);
  const SparseLcaIndex idx(tree, list);
  Rng rng(7);
  std::vector<std::pair<VertexId, VertexId>> queries(1024);
  for (auto& q : queries) {
    q = {static_cast<VertexId>(rng.index(tree.n())),
         static_cast<VertexId>(rng.index(tree.n()))};
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [u, v] = queries[i++ & 1023];
    benchmark::DoNotOptimize(idx.lca(u, v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SparseLcaQuery)->Range(1 << 10, 1 << 17);

void BM_BinaryLiftingLcaQuery(benchmark::State& state) {
  const auto tree = benchmark_tree(static_cast<std::size_t>(state.range(0)));
  Rng rng(7);
  std::vector<std::pair<VertexId, VertexId>> queries(1024);
  for (auto& q : queries) {
    q = {static_cast<VertexId>(rng.index(tree.n())),
         static_cast<VertexId>(rng.index(tree.n()))};
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [u, v] = queries[i++ & 1023];
    benchmark::DoNotOptimize(tree.lca(u, v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BinaryLiftingLcaQuery)->Range(1 << 10, 1 << 17);

void BM_ProjectionQuery(benchmark::State& state) {
  const auto tree = benchmark_tree(static_cast<std::size_t>(state.range(0)));
  const auto [a, b] = tree.diameter_endpoints();
  const auto path = tree.path(a, b);
  Rng rng(11);
  std::size_t i = 0;
  std::vector<VertexId> queries(1024);
  for (auto& v : queries) v = static_cast<VertexId>(rng.index(tree.n()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        project_onto_path(tree, path, queries[i++ & 1023]));
  }
}
BENCHMARK(BM_ProjectionQuery)->Range(1 << 10, 1 << 17);

void BM_TreeAARoundBudget(benchmark::State& state) {
  // The full publicly-computable round budget (configs over both phases).
  const auto tree = benchmark_tree(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::tree_aa_rounds(tree, 16, 5));
  }
}
BENCHMARK(BM_TreeAARoundBudget)->Range(1 << 10, 1 << 16);

}  // namespace

BENCHMARK_MAIN();
